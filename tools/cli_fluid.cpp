#include <cstdio>
#include <map>
#include <sstream>
#include <string>

#include "cli_commands.hpp"
#include "core/fluid_runner.hpp"
#include "core/journal.hpp"

namespace flexnets::cli {

int cmd_fluid(const Args& args) {
  const auto t = build_topology(args);
  if (!t) return 1;

  core::FluidSweepOptions opts;
  opts.eps = args.get_double("eps", 0.07);
  opts.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  if (opts.eps <= 0.0 || opts.eps > 0.5) {
    std::fprintf(stderr, "error: --eps must be in (0, 0.5]\n");
    return 1;
  }
  // 0 = auto (FLEXNETS_THREADS env, else hardware concurrency). Same-seed
  // results are bit-identical for every thread count.
  opts.threads = static_cast<int>(args.get_int("threads", 0));
  if (opts.threads < 0) {
    std::fprintf(stderr, "error: --threads must be >= 0\n");
    return 1;
  }

  if (args.has("fractions")) {
    opts.fractions.clear();
    std::istringstream in(args.get("fractions", ""));
    std::string tok;
    while (std::getline(in, tok, ',')) {
      const double x = std::strtod(tok.c_str(), nullptr);
      if (x <= 0.0 || x > 1.0) {
        std::fprintf(stderr, "error: fraction '%s' not in (0, 1]\n",
                     tok.c_str());
        return 1;
      }
      opts.fractions.push_back(x);
    }
    if (opts.fractions.empty()) {
      std::fprintf(stderr, "error: --fractions is empty\n");
      return 1;
    }
  } else {
    opts.fractions = {0.2, 0.4, 0.6, 0.8, 1.0};
  }

  // Cooperative GK budget: stop after N completed phases, keeping the
  // feasible partial lambda (status column shows budget-exhausted).
  opts.limits.max_phases = static_cast<int>(args.get_int("max-phases", 0));
  if (opts.limits.max_phases < 0) {
    std::fprintf(stderr, "error: --max-phases must be >= 0\n");
    return 1;
  }

  const auto tm = args.get("tm", "longest-matching");
  if (tm == "longest-matching") {
    opts.family = core::TmFamily::kLongestMatching;
  } else if (tm == "permutation") {
    opts.family = core::TmFamily::kRandomPermutation;
  } else if (tm == "a2a") {
    opts.family = core::TmFamily::kAllToAll;
  } else {
    std::fprintf(stderr, "error: unknown --tm '%s'\n", tm.c_str());
    return 1;
  }

  // --journal <path>: append each finished point durably; --resume <path>:
  // skip points already journaled there (and keep appending to it).
  core::Journal journal;
  std::map<std::string, core::JournalRecord> completed;
  const auto resume_path = args.get("resume", "");
  auto journal_path = args.get("journal", "");
  if (!resume_path.empty()) {
    const auto records = core::load_journal(resume_path);
    if (!records.ok()) {
      std::fprintf(stderr, "error: cannot resume: %s\n",
                   records.status().to_string().c_str());
      return 1;
    }
    completed = core::index_by_key(*records);
    std::printf("resume: %zu journaled points in %s\n", completed.size(),
                resume_path.c_str());
    if (journal_path.empty()) journal_path = resume_path;
  }
  if (!journal_path.empty()) {
    const auto st = journal.open(journal_path);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.to_string().c_str());
      return 1;
    }
  }

  core::ResilientSweepOptions ropts;
  ropts.sweep = opts;
  ropts.journal = &journal;
  ropts.completed = &completed;
  ropts.key_prefix = "fluid";
  const auto records = core::fluid_sweep_resilient(*t, ropts);

  std::printf("topology: %s | TM: %s | eps: %.3f\n", t->name.c_str(),
              tm.c_str(), opts.eps);
  std::printf("%-12s %-22s %s\n", "fraction", "per_server_throughput",
              "status");
  std::size_t failed = 0;
  for (const auto& r : records) {
    std::printf("%-12.3f %-22.4f %s\n", r.point.fraction, r.point.throughput,
                r.status.ok() ? "ok" : r.status.to_string().c_str());
    if (!r.status.ok() &&
        r.status.code() != StatusCode::kBudgetExhausted) {
      ++failed;
    }
  }
  std::printf("digest fluid: %016llx (%zu points, %zu failed)\n",
              static_cast<unsigned long long>(core::fluid_sweep_digest(records)),
              records.size(), failed);
  return failed == 0 ? 0 : 1;
}

}  // namespace flexnets::cli
