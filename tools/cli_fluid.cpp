#include <cstdio>
#include <sstream>

#include "cli_commands.hpp"
#include "core/fluid_runner.hpp"

namespace flexnets::cli {

int cmd_fluid(const Args& args) {
  const auto t = build_topology(args);
  if (!t) return 1;

  core::FluidSweepOptions opts;
  opts.eps = args.get_double("eps", 0.07);
  opts.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  if (opts.eps <= 0.0 || opts.eps > 0.5) {
    std::fprintf(stderr, "error: --eps must be in (0, 0.5]\n");
    return 1;
  }
  // 0 = auto (FLEXNETS_THREADS env, else hardware concurrency). Same-seed
  // results are bit-identical for every thread count.
  opts.threads = static_cast<int>(args.get_int("threads", 0));
  if (opts.threads < 0) {
    std::fprintf(stderr, "error: --threads must be >= 0\n");
    return 1;
  }

  if (args.has("fractions")) {
    opts.fractions.clear();
    std::istringstream in(args.get("fractions", ""));
    std::string tok;
    while (std::getline(in, tok, ',')) {
      const double x = std::strtod(tok.c_str(), nullptr);
      if (x <= 0.0 || x > 1.0) {
        std::fprintf(stderr, "error: fraction '%s' not in (0, 1]\n",
                     tok.c_str());
        return 1;
      }
      opts.fractions.push_back(x);
    }
    if (opts.fractions.empty()) {
      std::fprintf(stderr, "error: --fractions is empty\n");
      return 1;
    }
  } else {
    opts.fractions = {0.2, 0.4, 0.6, 0.8, 1.0};
  }

  const auto tm = args.get("tm", "longest-matching");
  if (tm == "longest-matching") {
    opts.family = core::TmFamily::kLongestMatching;
  } else if (tm == "permutation") {
    opts.family = core::TmFamily::kRandomPermutation;
  } else if (tm == "a2a") {
    opts.family = core::TmFamily::kAllToAll;
  } else {
    std::fprintf(stderr, "error: unknown --tm '%s'\n", tm.c_str());
    return 1;
  }

  std::printf("topology: %s | TM: %s | eps: %.3f\n", t->name.c_str(),
              tm.c_str(), opts.eps);
  std::printf("%-12s %s\n", "fraction", "per_server_throughput");
  for (const auto& p : core::fluid_sweep(*t, opts)) {
    std::printf("%-12.3f %.4f\n", p.fraction, p.throughput);
  }
  return 0;
}

}  // namespace flexnets::cli
