#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "cli_commands.hpp"
#include "core/fluid_runner.hpp"
#include "core/journal.hpp"
#include "flow/throughput.hpp"
#include "sweep/coordinator.hpp"
#include "sweep/worker.hpp"

namespace flexnets::cli {

int cmd_fluid(const Args& args) {
  const auto t = build_topology(args);
  if (!t) return 1;

  core::FluidSweepOptions opts;
  opts.eps = args.get_double("eps", 0.07);
  opts.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  if (opts.eps <= 0.0 || opts.eps > 0.5) {
    std::fprintf(stderr, "error: --eps must be in (0, 0.5]\n");
    return 1;
  }
  // 0 = auto (FLEXNETS_THREADS env, else hardware concurrency). Same-seed
  // results are bit-identical for every thread count.
  opts.threads = static_cast<int>(args.get_int("threads", 0));
  if (opts.threads < 0) {
    std::fprintf(stderr, "error: --threads must be >= 0\n");
    return 1;
  }

  if (args.has("fractions")) {
    opts.fractions.clear();
    std::istringstream in(args.get("fractions", ""));
    std::string tok;
    while (std::getline(in, tok, ',')) {
      const double x = std::strtod(tok.c_str(), nullptr);
      if (x <= 0.0 || x > 1.0) {
        std::fprintf(stderr, "error: fraction '%s' not in (0, 1]\n",
                     tok.c_str());
        return 1;
      }
      opts.fractions.push_back(x);
    }
    if (opts.fractions.empty()) {
      std::fprintf(stderr, "error: --fractions is empty\n");
      return 1;
    }
  } else {
    opts.fractions = {0.2, 0.4, 0.6, 0.8, 1.0};
  }

  // Cooperative GK budget: stop after N completed phases, keeping the
  // feasible partial lambda (status column shows budget-exhausted).
  opts.limits.max_phases = static_cast<int>(args.get_int("max-phases", 0));
  if (opts.limits.max_phases < 0) {
    std::fprintf(stderr, "error: --max-phases must be >= 0\n");
    return 1;
  }

  const auto tm = args.get("tm", "longest-matching");
  if (tm == "longest-matching") {
    opts.family = core::TmFamily::kLongestMatching;
  } else if (tm == "permutation") {
    opts.family = core::TmFamily::kRandomPermutation;
  } else if (tm == "a2a") {
    opts.family = core::TmFamily::kAllToAll;
  } else {
    std::fprintf(stderr, "error: unknown --tm '%s'\n", tm.c_str());
    return 1;
  }

  // Sharding (src/sweep): --workers N runs the sweep across N worker
  // subprocesses; --sweep-worker=fluid (internal) is this binary re-exec'ed
  // as one of those workers, serving leases over fds 3/4 until shutdown.
  const int workers = static_cast<int>(args.get_int("workers", 0));
  const int max_attempts = static_cast<int>(args.get_int("max-attempts", 3));
  if (workers < 0 || max_attempts < 1) {
    std::fprintf(stderr,
                 "error: --workers wants >= 0 and --max-attempts >= 1\n");
    return 1;
  }
  const auto worker_grid = args.get("sweep-worker", "");
  if (!worker_grid.empty()) {
    if (worker_grid != "fluid") {
      std::fprintf(stderr, "error: unknown --sweep-worker grid '%s'\n",
                   worker_grid.c_str());
      return 2;
    }
    const auto cache = flow::build_throughput_cache(*t);
    sweep::WorkerOptions wopts;
    wopts.num_points = opts.fractions.size();
    wopts.key_prefix = "fluid";
    wopts.fn = [&](std::size_t i) {
      return core::to_journal_record(
          "fluid", i, core::fluid_sweep_point(*t, cache, opts, i));
    };
    return sweep::run_worker(wopts);
  }

  // --journal <path>: append each finished point durably; --resume <path>:
  // skip points already journaled there (and keep appending to it).
  core::Journal journal;
  std::map<std::string, core::JournalRecord> completed;
  const auto resume_path = args.get("resume", "");
  auto journal_path = args.get("journal", "");
  if (!resume_path.empty()) {
    const auto records = core::load_journal(resume_path);
    if (!records.ok()) {
      std::fprintf(stderr, "error: cannot resume: %s\n",
                   records.status().to_string().c_str());
      return 1;
    }
    completed = core::index_by_key(*records);
    std::printf("resume: %zu journaled points in %s\n", completed.size(),
                resume_path.c_str());
    if (journal_path.empty()) journal_path = resume_path;
  }
  if (!journal_path.empty()) {
    const auto st = journal.open(journal_path);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.to_string().c_str());
      return 1;
    }
  }

  std::vector<core::FluidPointRecord> records;
  if (workers > 1) {
    sweep::ShardedOptions sopts;
    sopts.exec_path = "/proc/self/exe";
    sopts.args.push_back("fluid");
    for (const auto& [k, v] : args.items()) {
      if (k == "workers" || k == "max-attempts" || k == "journal" ||
          k == "resume" || k == "sweep-worker") {
        continue;  // coordinator-only flags must not reach the worker
      }
      sopts.args.push_back(v.empty() ? "--" + k : "--" + k + "=" + v);
    }
    sopts.args.push_back("--sweep-worker=fluid");
    sopts.workers = workers;
    sopts.max_attempts = max_attempts;
    sopts.journal = &journal;
    sopts.completed = &completed;
    sopts.key_prefix = "fluid";
    auto sharded = sweep::run_sharded(opts.fractions.size(), sopts);
    if (!sharded.ok()) {
      std::fprintf(stderr, "error: sharded sweep failed: %s\n",
                   sharded.status().to_string().c_str());
      return 1;
    }
    std::printf(
        "sharded fluid: %d workers | %zu computed, %zu restored, %zu "
        "retries, %zu quarantined, %zu worker deaths\n",
        workers, sharded->computed, sharded->restored, sharded->retries,
        sharded->quarantined, sharded->worker_deaths);
    records.reserve(sharded->records.size());
    for (const auto& rec : sharded->records) {
      records.push_back(core::from_journal_record(rec));
    }
  } else {
    core::ResilientSweepOptions ropts;
    ropts.sweep = opts;
    ropts.journal = &journal;
    ropts.completed = &completed;
    ropts.key_prefix = "fluid";
    records = core::fluid_sweep_resilient(*t, ropts);
  }

  std::printf("topology: %s | TM: %s | eps: %.3f\n", t->name.c_str(),
              tm.c_str(), opts.eps);
  std::printf("%-12s %-22s %s\n", "fraction", "per_server_throughput",
              "status");
  std::size_t failed = 0;
  for (const auto& r : records) {
    std::printf("%-12.3f %-22.4f %s\n", r.point.fraction, r.point.throughput,
                r.status.ok() ? "ok" : r.status.to_string().c_str());
    if (!r.status.ok() &&
        r.status.code() != StatusCode::kBudgetExhausted) {
      ++failed;
    }
  }
  std::printf("digest fluid: %016llx (%zu points, %zu failed)\n",
              static_cast<unsigned long long>(core::fluid_sweep_digest(records)),
              records.size(), failed);
  return failed == 0 ? 0 : 1;
}

}  // namespace flexnets::cli
