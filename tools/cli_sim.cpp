#include <cstdio>

#include "cli_commands.hpp"
#include "core/experiment.hpp"
#include "flowsim/flow_sim.hpp"
#include "workload/flow_size.hpp"
#include "workload/trace.hpp"

namespace flexnets::cli {

namespace {

// Runs the flow-level (max-min fluid) engine on the same workload the
// packet path would use; triggered by --engine=flow.
int run_flow_level(const topo::Topology& t,
                   const workload::PairDistribution& pairs,
                   const workload::FlowSizeDistribution& sizes,
                   const std::string& routing, double rate_per_server,
                   TimeNs warmup, TimeNs window, std::uint64_t seed,
                   const std::string& trace_out) {
  flowsim::FlowSimConfig cfg;
  cfg.seed = seed;
  if (routing == "ecmp") {
    cfg.routing = flowsim::FlowRouting::kEcmpSampled;
  } else if (routing == "ecmp-split") {
    cfg.routing = flowsim::FlowRouting::kEcmpSplit;
  } else if (routing == "vlb") {
    cfg.routing = flowsim::FlowRouting::kVlb;
  } else if (routing == "hyb") {
    cfg.routing = flowsim::FlowRouting::kHyb;
  } else {
    std::fprintf(stderr,
                 "error: --engine=flow supports "
                 "--routing=ecmp|ecmp-split|vlb|hyb\n");
    return 1;
  }
  int active_servers = 0;
  for (const auto r : pairs.active_racks()) {
    active_servers += t.servers_per_switch[r];
  }
  const double rate = rate_per_server * active_servers;
  const int num_flows = std::max(
      1, static_cast<int>(rate * to_seconds(warmup + window + window / 2)));
  const auto flows =
      workload::generate_flows(pairs, sizes, rate, num_flows, seed);
  if (!trace_out.empty() && !workload::save_trace(trace_out, flows)) {
    std::fprintf(stderr, "error: cannot write %s\n", trace_out.c_str());
    return 1;
  }

  flowsim::FlowLevelSimulator sim(t, cfg);
  const auto records = sim.run(flows);
  const auto s = metrics::summarize(records, warmup, warmup + window,
                                    workload::kShortFlowThreshold);
  std::printf("\n[flow-level engine] flows measured: %d\n", s.measured_flows);
  std::printf("avg FCT:                   %.3f ms\n", s.avg_fct_ms);
  std::printf("p99 short-flow FCT:        %.3f ms\n", s.p99_short_fct_ms);
  std::printf("avg long-flow throughput:  %.3f Gbps\n",
              s.avg_long_tput_gbps);
  return 0;
}

}  // namespace

int cmd_sim(const Args& args) {
  const auto t = build_topology(args);
  if (!t) return 1;
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  // Workload.
  std::unique_ptr<workload::PairDistribution> pairs;
  const auto wl = args.get("workload", "a2a");
  const double fraction = args.get_double("fraction", 1.0);
  if (fraction <= 0.0 || fraction > 1.0) {
    std::fprintf(stderr, "error: --fraction not in (0, 1]\n");
    return 1;
  }
  if (wl == "a2a") {
    pairs = workload::all_to_all_pairs(
        *t, workload::random_fraction_racks(*t, fraction, seed));
  } else if (wl == "permute") {
    pairs = workload::permutation_pairs(
        *t, workload::random_fraction_racks(*t, fraction, seed), seed);
  } else if (wl == "skew") {
    pairs = workload::skew_pairs(*t, args.get_double("theta", 0.04),
                                 args.get_double("phi", 0.77), seed);
  } else if (wl == "two-rack") {
    if (t->num_network_links() == 0) {
      std::fprintf(stderr, "error: topology has no links\n");
      return 1;
    }
    const auto e = t->g.edge(0);
    const int per_rack =
        std::min(t->servers_per_switch[e.a], t->servers_per_switch[e.b]);
    if (per_rack == 0) {
      std::fprintf(stderr, "error: adjacent racks host no servers\n");
      return 1;
    }
    pairs = workload::two_rack_pairs(*t, e.a, e.b, per_rack);
  } else {
    std::fprintf(stderr, "error: unknown --workload '%s'\n", wl.c_str());
    return 1;
  }

  const auto sz = args.get("sizes", "pfabric");
  std::unique_ptr<workload::FlowSizeDistribution> sizes;
  if (sz == "pfabric") {
    sizes = workload::pfabric_web_search();
  } else if (sz == "pareto") {
    sizes = workload::pareto_hull();
  } else {
    std::fprintf(stderr, "error: unknown --sizes '%s'\n", sz.c_str());
    return 1;
  }

  // Timing/load flags shared by both engines.
  const double rate = args.get_double("rate", 100.0);
  const auto warmup = args.get_int("warmup-ms", 20) * kMillisecond;
  const auto window = args.get_int("window-ms", 30) * kMillisecond;
  if (rate <= 0.0 || warmup < 0 || window <= 0) {
    std::fprintf(stderr, "error: bad --rate/--warmup-ms/--window-ms\n");
    return 1;
  }

  const auto engine = args.get("engine", "packet");
  const auto routing = args.get("routing", "hyb");
  if (engine == "flow") {
    return run_flow_level(*t, *pairs, *sizes, routing, rate, warmup, window,
                          seed, args.get("trace-out", ""));
  }
  if (engine != "packet") {
    std::fprintf(stderr, "error: unknown --engine '%s'\n", engine.c_str());
    return 1;
  }

  // Routing (packet engine).
  core::PacketSimOptions opts;
  if (routing == "ecmp") {
    opts.net.routing.mode = routing::RoutingMode::kEcmp;
  } else if (routing == "vlb") {
    opts.net.routing.mode = routing::RoutingMode::kVlb;
  } else if (routing == "hyb") {
    opts.net.routing.mode = routing::RoutingMode::kHyb;
  } else if (routing == "hybecn") {
    opts.net.routing.mode = routing::RoutingMode::kHybEcn;
  } else if (routing == "ksp") {
    opts.net.routing.mode = routing::RoutingMode::kKsp;
  } else if (routing == "spray") {
    opts.net.routing.mode = routing::RoutingMode::kSpray;
  } else {
    std::fprintf(stderr, "error: unknown --routing '%s'\n", routing.c_str());
    return 1;
  }
  const auto policy = args.get("policy", "hash");
  if (policy == "leastqueue") {
    opts.net.routing.switch_policy = routing::SwitchPolicy::kLeastQueue;
  } else if (policy != "hash") {
    std::fprintf(stderr, "error: unknown --policy '%s'\n", policy.c_str());
    return 1;
  }

  int active_servers = 0;
  for (const auto r : pairs->active_racks()) {
    active_servers += t->servers_per_switch[r];
  }
  opts.arrival_rate = rate * active_servers;
  opts.window_begin = warmup;
  opts.window_end = warmup + window;
  opts.arrival_tail = window / 2;
  opts.seed = seed;

  std::printf(
      "topology: %s | workload: %s | sizes: %s | routing: %s/%s\n"
      "active servers: %d | aggregate rate: %.0f flows/s | window: "
      "[%lld, %lld) ms\n",
      t->name.c_str(), wl.c_str(), sz.c_str(), routing.c_str(),
      policy.c_str(), active_servers, opts.arrival_rate,
      static_cast<long long>(opts.window_begin / kMillisecond),
      static_cast<long long>(opts.window_end / kMillisecond));

  const auto r = core::run_packet_experiment(*t, *pairs, *sizes, opts);
  std::printf("\nflows measured:            %d (incomplete: %d)\n",
              r.fct.measured_flows, r.fct.incomplete_flows);
  std::printf("avg FCT:                   %.3f ms\n", r.fct.avg_fct_ms);
  std::printf("p99 FCT:                   %.3f ms\n", r.fct.p99_fct_ms);
  std::printf("p99 short-flow FCT:        %.3f ms\n",
              r.fct.p99_short_fct_ms);
  std::printf("avg long-flow throughput:  %.3f Gbps\n",
              r.fct.avg_long_tput_gbps);
  std::printf("events: %llu | drops: %llu | ECN marks: %llu\n",
              static_cast<unsigned long long>(r.events),
              static_cast<unsigned long long>(r.drops),
              static_cast<unsigned long long>(r.ecn_marks));
  return 0;
}

}  // namespace flexnets::cli
