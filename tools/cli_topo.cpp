#include <cstdio>

#include "cli_commands.hpp"
#include "cost/cost_model.hpp"
#include "graph/algorithms.hpp"
#include "graph/spectral.hpp"
#include "topo/fat_tree.hpp"
#include "topo/io.hpp"
#include "topo/jellyfish.hpp"
#include "topo/dragonfly.hpp"
#include "topo/long_hop.hpp"
#include "topo/slim_fly.hpp"
#include "topo/xpander.hpp"

namespace flexnets::cli {

void print_usage() {
  std::puts(
      "flexnets_cli <command> [--flags]\n"
      "\n"
      "commands:\n"
      "  topo    generate/inspect a topology\n"
      "  fluid   fluid-flow per-server throughput sweep (paper section 5)\n"
      "  sim     packet/flow-level experiment (paper section 6)\n"
      "  dyn     time-slotted dynamic fabric experiment (paper section 4)\n"
      "\n"
      "topology selection (all commands):\n"
      "  --topo=fattree   --k=8 [--cores=N]          (stripped fat-tree)\n"
      "  --topo=xpander   --degree=5 --lift=9 --servers=3\n"
      "  --topo=jellyfish --switches=50 --degree=7 --servers=6\n"
      "  --topo=slimfly   --q=5 --servers=6          (q prime, q%4==1)\n"
      "  --topo=longhop   --dim=6 --extra=1 --servers=6\n"
      "  --topo=dragonfly --a=4 --h=2 --servers=2\n"
      "  --load=file.topo                            (saved topology)\n"
      "  --seed=N         (randomized generators; default 1)\n"
      "\n"
      "topo command:\n"
      "  --stats          print diameter / distances / expansion / cost\n"
      "  --save=FILE      write the text format\n"
      "  --dot=FILE       write Graphviz\n"
      "\n"
      "fluid command:\n"
      "  --fractions=0.2,0.5,1.0   active-rack fractions (default 5 steps)\n"
      "  --tm=longest-matching|permutation|a2a\n"
      "  --eps=0.07                GK accuracy\n"
      "  --threads=N               sweep workers (0 = FLEXNETS_THREADS or\n"
      "                            hardware concurrency; same-seed results\n"
      "                            are identical for every N)\n"
      "  --journal=FILE            append each finished point durably\n"
      "  --resume=FILE             skip points already journaled in FILE\n"
      "  --workers=N               shard the sweep over N worker\n"
      "                            subprocesses (crash-isolated; digest is\n"
      "                            identical for every N)\n"
      "  --max-attempts=N          retries before a crashy point is\n"
      "                            quarantined (default 3)\n"
      "\n"
      "sim command:\n"
      "  --engine=packet|flow     packet-level DCTCP or flow-level max-min\n"
      "  --trace-out=FILE         save the generated flow trace (flow engine)\n"
      "  --workload=a2a|permute|skew|two-rack   (default a2a)\n"
      "  --fraction=0.5           active-rack fraction (a2a/permute)\n"
      "  --theta=0.04 --phi=0.77  (skew)\n"
      "  --sizes=pfabric|pareto   (default pfabric)\n"
      "  --routing=ecmp|vlb|hyb|hybecn|ksp|spray  (default hyb)\n"
      "  --policy=hash|leastqueue (switch policy, default hash)\n"
      "  --rate=100               flow starts/s per active server\n"
      "  --window-ms=30 --warmup-ms=20\n"
      "  --seed=N\n"
      "\n"
      "dyn command (no --topo; the fabric IS the network):\n"
      "  --tors=32 --servers=4 --ports=4\n"
      "  --scheduler=rotor|demand-aware\n"
      "  --slot-us=100 --reconfig-us=10\n"
      "  --workload=skew|a2a [--theta --phi] --rate=20\n"
      "  --window-ms=30 --warmup-ms=20 --seed=N");
}

std::optional<topo::Topology> build_topology(const Args& args) {
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  if (args.has("load")) {
    auto t = topo::load_topology(args.get("load", ""));
    if (!t.ok()) {
      std::fprintf(stderr, "error: %s\n", t.status().to_string().c_str());
      return std::nullopt;
    }
    return std::move(t).value();
  }
  const auto kind = args.get("topo", "");
  if (kind == "fattree") {
    const int k = static_cast<int>(args.get_int("k", 8));
    if (k < 2 || k % 2 != 0) {
      std::fprintf(stderr, "error: --k must be even and >= 2\n");
      return std::nullopt;
    }
    const int full_cores = (k / 2) * (k / 2);
    const int cores =
        static_cast<int>(args.get_int("cores", full_cores));
    if (cores < 1 || cores > full_cores) {
      std::fprintf(stderr, "error: --cores out of range [1, %d]\n",
                   full_cores);
      return std::nullopt;
    }
    return topo::fat_tree_stripped(k, cores).topo;
  }
  if (kind == "xpander") {
    const int d = static_cast<int>(args.get_int("degree", 5));
    const int lift = static_cast<int>(args.get_int("lift", 9));
    const int srv = static_cast<int>(args.get_int("servers", 3));
    if (d < 1 || lift < 1 || srv < 0) {
      std::fprintf(stderr, "error: bad xpander parameters\n");
      return std::nullopt;
    }
    return topo::xpander(d, lift, srv, seed).topo;
  }
  if (kind == "jellyfish") {
    const int n = static_cast<int>(args.get_int("switches", 50));
    const int d = static_cast<int>(args.get_int("degree", 7));
    const int srv = static_cast<int>(args.get_int("servers", 6));
    if (n <= d || (static_cast<std::int64_t>(n) * d) % 2 != 0) {
      std::fprintf(stderr,
                   "error: need switches > degree and switches*degree even\n");
      return std::nullopt;
    }
    return topo::jellyfish(n, d, srv, seed);
  }
  if (kind == "slimfly") {
    const int q = static_cast<int>(args.get_int("q", 5));
    const int srv = static_cast<int>(args.get_int("servers", 6));
    if (!topo::is_prime(q) || q % 4 != 1) {
      std::fprintf(stderr, "error: --q must be a prime with q%%4==1\n");
      return std::nullopt;
    }
    return topo::slim_fly(q, srv).topo;
  }
  if (kind == "dragonfly") {
    const int a = static_cast<int>(args.get_int("a", 4));
    const int h = static_cast<int>(args.get_int("h", 2));
    const int srv = static_cast<int>(args.get_int("servers", 2));
    if (a < 1 || h < 1 || srv < 0) {
      std::fprintf(stderr, "error: bad dragonfly parameters\n");
      return std::nullopt;
    }
    return topo::dragonfly(a, h, srv).topo;
  }
  if (kind == "longhop") {
    const int dim = static_cast<int>(args.get_int("dim", 6));
    const int extra = static_cast<int>(args.get_int("extra", 1));
    const int srv = static_cast<int>(args.get_int("servers", 6));
    if (dim < 1 || dim > 20 || extra < 0 || extra > dim) {
      std::fprintf(stderr, "error: bad longhop parameters\n");
      return std::nullopt;
    }
    return topo::long_hop(dim, extra, srv);
  }
  std::fprintf(stderr,
               "error: missing or unknown --topo (and no --load given)\n");
  return std::nullopt;
}

int cmd_topo(const Args& args) {
  const auto t = build_topology(args);
  if (!t) return 1;

  std::printf("%s: %d switches, %d servers, %d network links\n",
              t->name.c_str(), t->num_switches(), t->num_servers(),
              t->num_network_links());

  if (args.has("stats")) {
    std::printf("  diameter:         %d\n", graph::diameter(t->g));
    std::printf("  mean distance:    %.3f\n", graph::mean_distance(t->g));
    std::printf("  connected:        %s\n",
                graph::is_connected(t->g) ? "yes" : "no");
    int min_deg = t->num_switches() ? t->g.degree(0) : 0;
    int max_deg = min_deg;
    for (graph::NodeId s = 0; s < t->num_switches(); ++s) {
      min_deg = std::min(min_deg, t->g.degree(s));
      max_deg = std::max(max_deg, t->g.degree(s));
    }
    std::printf("  network degree:   %d..%d\n", min_deg, max_deg);
    if (min_deg == max_deg && min_deg > 1) {
      std::printf("  lambda2:          %.3f (Ramanujan bound %.3f)\n",
                  graph::second_eigenvalue(t->g, 300, 7),
                  graph::ramanujan_bound(min_deg));
    }
    std::printf("  network cost:     $%.0f (static ports, Table 1)\n",
                cost::network_cost(*t));
  }
  if (args.has("save")) {
    const auto path = args.get("save", "");
    if (const auto st = topo::save_topology(path, *t); !st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.to_string().c_str());
      return 1;
    }
    std::printf("saved to %s\n", path.c_str());
  }
  if (args.has("dot")) {
    const auto path = args.get("dot", "");
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return 1;
    }
    const auto dot = topo::to_dot(*t);
    std::fwrite(dot.data(), 1, dot.size(), f);
    std::fclose(f);
    std::printf("dot written to %s\n", path.c_str());
  }
  return 0;
}

}  // namespace flexnets::cli
