// Include-graph layering against tools/layering.json, plus file-level
// include-cycle detection.
//
// The contract is a bottom-up list of layer groups; a module may include
// headers from its own layer (sim <-> transport is legal) or any lower
// layer, never a higher one. Modules absent from the contract (fixture
// trees, scratch dirs) are unconstrained at the module level but still
// participate in cycle detection.
//
// Module edges are judged from the include *target's* path prefix
// ("routing/strategy.hpp" -> routing), so a violation is reported even
// when the target header is not part of the scanned corpus. Cycles are
// found on the resolved file graph with a DFS; the finding lands on the
// back-edge's #include line, which is the edge a developer would cut.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis.hpp"

namespace flexnets::analyze {

namespace fs = std::filesystem;

namespace {

// Minimal JSON reader for the two shapes layering.json uses: an object
// with string keys whose values are arrays of strings or arrays of arrays
// of strings. Anything else in the file is a hard error — the contract is
// ours, so strictness beats generality.
struct JsonCursor {
  const std::string& s;
  std::size_t i = 0;

  void skip_ws() {
    while (i < s.size() &&
           (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r')) {
      ++i;
    }
  }
  bool eat(char c) {
    skip_ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool peek_is(char c) {
    skip_ws();
    return i < s.size() && s[i] == c;
  }
  bool string(std::string* out) {
    if (!eat('"')) return false;
    out->clear();
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\' && i + 1 < s.size()) ++i;
      out->push_back(s[i++]);
    }
    return eat('"');
  }
  bool string_array(std::vector<std::string>* out) {
    if (!eat('[')) return false;
    out->clear();
    if (eat(']')) return true;
    do {
      std::string v;
      if (!string(&v)) return false;
      out->push_back(std::move(v));
    } while (eat(','));
    return eat(']');
  }
};

std::string module_of_include(const std::string& target) {
  // Mirror module_of (scan.cpp): the include's directory path is the
  // module, so "sim/pdes/runner.hpp" maps to module "sim/pdes" while
  // "sim/network.hpp" stays "sim".
  const std::size_t last = target.rfind('/');
  if (last == std::string::npos) return "";
  return target.substr(0, last);
}

struct CycleFinder {
  // Adjacency over corpus file indices, each edge tagged with the include
  // line that created it.
  struct Edge {
    std::size_t to;
    int line;
  };
  const Corpus& corpus;
  Reporter& rep;
  std::vector<std::vector<Edge>> adj;
  // 0 = unvisited, 1 = on the current DFS stack, 2 = done.
  std::vector<int> state;

  void dfs(std::size_t u) {
    state[u] = 1;
    for (const Edge& e : adj[u]) {
      if (state[e.to] == 1) {
        rep.emit(corpus.files[u], e.line, "include-cycle",
                 "including \"" + corpus.files[e.to].rel_path +
                     "\" closes an include cycle; break the cycle with a "
                     "forward declaration or by moving the shared type "
                     "down a layer");
      } else if (state[e.to] == 0) {
        dfs(e.to);
      }
    }
    state[u] = 2;
  }
};

}  // namespace

std::optional<LayeringContract> load_layering(const std::string& json_path) {
  std::ifstream in(json_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "flexnets_analyze: cannot read layering contract: %s\n",
                 json_path.c_str());
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  JsonCursor c{text};
  if (!c.eat('{')) {
    std::fprintf(stderr, "flexnets_analyze: %s: expected a JSON object\n",
                 json_path.c_str());
    return std::nullopt;
  }
  LayeringContract contract;
  bool saw_layers = false;
  if (!c.peek_is('}')) {
    do {
      std::string key;
      if (!c.string(&key) || !c.eat(':')) {
        std::fprintf(stderr, "flexnets_analyze: %s: malformed object key\n",
                     json_path.c_str());
        return std::nullopt;
      }
      if (key == "layers") {
        if (!c.eat('[')) {
          std::fprintf(stderr,
                       "flexnets_analyze: %s: \"layers\" must be an array\n",
                       json_path.c_str());
          return std::nullopt;
        }
        saw_layers = true;
        if (!c.peek_is(']')) {
          do {
            std::vector<std::string> group;
            if (!c.string_array(&group)) {
              std::fprintf(
                  stderr,
                  "flexnets_analyze: %s: each layer must be a string array\n",
                  json_path.c_str());
              return std::nullopt;
            }
            for (const std::string& m : group) {
              if (contract.layer_of.count(m) > 0) {
                std::fprintf(stderr,
                             "flexnets_analyze: %s: module \"%s\" appears in "
                             "two layers\n",
                             json_path.c_str(), m.c_str());
                return std::nullopt;
              }
              contract.layer_of[m] = contract.num_layers;
            }
            ++contract.num_layers;
          } while (c.eat(','));
        }
        if (!c.eat(']')) return std::nullopt;
      } else {
        // "comment" and any future metadata: a string array we ignore.
        std::vector<std::string> ignored;
        std::string ignored_str;
        if (!c.string_array(&ignored) && !c.string(&ignored_str)) {
          std::fprintf(stderr,
                       "flexnets_analyze: %s: unsupported value for \"%s\"\n",
                       json_path.c_str(), key.c_str());
          return std::nullopt;
        }
      }
    } while (c.eat(','));
  }
  if (!c.eat('}') || !saw_layers || contract.layer_of.empty()) {
    std::fprintf(stderr,
                 "flexnets_analyze: %s: missing or empty \"layers\" array\n",
                 json_path.c_str());
    return std::nullopt;
  }
  return contract;
}

void run_layering_pass(const Corpus& corpus, const LayeringContract& contract,
                       Reporter& rep) {
  // --- module-level layer check, from include-target prefixes ---
  for (const FileData& f : corpus.files) {
    const auto from = contract.layer_of.find(f.module);
    if (from == contract.layer_of.end()) continue;  // unconstrained module
    for (const PpLine& pp : f.lx.pp) {
      if (pp.include_target.empty() || !pp.include_quoted) continue;
      const std::string to_mod = module_of_include(pp.include_target);
      if (to_mod.empty() || to_mod == f.module) continue;
      const auto to = contract.layer_of.find(to_mod);
      if (to == contract.layer_of.end()) continue;
      if (to->second > from->second) {
        rep.emit(f, pp.line, "layering",
                 "\"" + f.module + "\" (layer " +
                     std::to_string(from->second) + ") must not include \"" +
                     pp.include_target + "\" from higher layer \"" + to_mod +
                     "\" (layer " + std::to_string(to->second) +
                     "); see tools/layering.json");
      }
    }
  }

  // --- file-level include-cycle detection ---
  // Resolve each quoted include to a corpus file: <root>/src/<target>,
  // <root>/<target>, then sibling-relative. Unresolved targets (system
  // headers, generated files) simply contribute no edge.
  std::map<std::string, std::size_t> by_abs;
  for (std::size_t k = 0; k < corpus.files.size(); ++k) {
    by_abs[corpus.files[k].abs_path] = k;
  }
  auto resolve = [&](const FileData& f,
                     const std::string& target) -> std::size_t {
    std::error_code ec;
    const fs::path root(corpus.root);
    const fs::path candidates[] = {
        root / "src" / target,
        root / target,
        fs::path(f.abs_path).parent_path() / target,
    };
    for (const fs::path& p : candidates) {
      const std::string abs = fs::weakly_canonical(p, ec).string();
      if (ec) continue;
      const auto it = by_abs.find(abs);
      if (it != by_abs.end()) return it->second;
    }
    return corpus.files.size();
  };

  CycleFinder cf{corpus, rep, {}, {}};
  cf.adj.resize(corpus.files.size());
  cf.state.assign(corpus.files.size(), 0);
  for (std::size_t u = 0; u < corpus.files.size(); ++u) {
    for (const PpLine& pp : corpus.files[u].lx.pp) {
      if (pp.include_target.empty() || !pp.include_quoted) continue;
      const std::size_t v = resolve(corpus.files[u], pp.include_target);
      if (v < corpus.files.size() && v != u) {
        cf.adj[u].push_back({v, pp.line});
      }
    }
  }
  // corpus.files is sorted by rel_path, so DFS roots are deterministic.
  for (std::size_t u = 0; u < corpus.files.size(); ++u) {
    if (cf.state[u] == 0) cf.dfs(u);
  }
}

}  // namespace flexnets::analyze
