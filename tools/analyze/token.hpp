// Token model and C++ lexer for flexnets_analyze.
//
// The lexer is what kills the regex lint's false-positive class: rules
// downstream see a token stream with comments, string/char literals
// (including raw strings), and preprocessor lines already separated out,
// so `// std::thread` in a comment or "exit(1)" in a log string can never
// trip a rule again.
#pragma once

#include <string>
#include <vector>

namespace flexnets::analyze {

enum class TokKind {
  kIdent,   // identifiers and keywords
  kNumber,  // numeric literals (incl. separators/suffixes, consumed whole)
  kPunct,   // operators/punctuation; multi-char operators are one token
  kString,  // string literal (text excludes quotes; raw strings unwrapped)
  kChar,    // character literal
};

struct Token {
  TokKind kind;
  std::string text;
  int line;  // 1-based
};

// A comment, attributed to the line it starts on. Suppressions
// (`flexnets-lint: allow(...)`) and fixture expectations (`EXPECT-LINT:`)
// are parsed from these.
struct Comment {
  int line;
  std::string text;  // without the // or /* */ delimiters
};

// One logical preprocessor line (backslash continuations joined).
struct PpLine {
  int line;            // line of the '#'
  std::string text;    // full directive text
  std::string include_target;  // for #include: the path between "" or <>
  bool include_quoted = false;  // "" (project) vs <> (system)
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<PpLine> pp;
};

// Lexes a whole translation unit. Never fails: malformed input degrades to
// best-effort tokens (an unterminated literal runs to end of line).
LexResult lex(const std::string& text);

}  // namespace flexnets::analyze
