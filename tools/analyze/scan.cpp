#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis.hpp"

namespace flexnets::analyze {

namespace fs = std::filesystem;

namespace {

const char* const kSourceExtensions[] = {".cpp", ".hpp", ".cc", ".h"};

bool is_source_file(const fs::path& p) {
  const std::string ext = p.extension().string();
  for (const char* e : kSourceExtensions) {
    if (ext == e) return true;
  }
  return false;
}

// Parses "flexnets-lint: allow(rule-a, rule-b)" out of one comment.
std::set<std::string> parse_allow(const std::string& comment) {
  std::set<std::string> rules;
  const std::size_t tag = comment.find("flexnets-lint:");
  if (tag == std::string::npos) return rules;
  std::size_t p = comment.find("allow", tag);
  if (p == std::string::npos) return rules;
  p = comment.find('(', p);
  const std::size_t end = comment.find(')', p);
  if (p == std::string::npos || end == std::string::npos) return rules;
  std::string inside = comment.substr(p + 1, end - p - 1);
  std::string rule;
  std::istringstream ss(inside);
  while (std::getline(ss, rule, ',')) {
    const std::size_t a = rule.find_first_not_of(" \t");
    const std::size_t b = rule.find_last_not_of(" \t");
    if (a != std::string::npos) rules.insert(rule.substr(a, b - a + 1));
  }
  return rules;
}

}  // namespace

void Reporter::emit(const FileData& file, int line, const std::string& rule,
                    const std::string& message) {
  const auto it = file.allows.find(line);
  if (it != file.allows.end() && it->second.count(rule) > 0) {
    used_allows_.insert({file.rel_path, line});
    return;
  }
  findings_.push_back(Finding{file.rel_path, line, rule, message});
}

void Reporter::finalize(const Corpus& corpus) {
  for (const FileData& f : corpus.files) {
    for (const auto& [line, rules] : f.allows) {
      if (used_allows_.count({f.rel_path, line}) > 0) continue;
      findings_.push_back(Finding{
          f.rel_path, line, "unused-suppression",
          "this flexnets-lint: allow(...) no longer suppresses anything; "
          "delete it (stale suppressions hide future regressions)"});
    }
  }
  std::sort(findings_.begin(), findings_.end());
}

std::string module_of(const std::string& rel_path) {
  const std::size_t slash = rel_path.find('/');
  if (slash == std::string::npos) return "";
  const std::string top = rel_path.substr(0, slash);
  if (top != "src") return top;
  // Under src/ the module is the file's full directory path, so nested
  // modules (sim/pdes) get their own layering.json entry instead of
  // inheriting the parent's layer.
  const std::size_t last = rel_path.rfind('/');
  if (last == slash) return "";
  return rel_path.substr(slash + 1, last - slash - 1);
}

std::optional<Corpus> load_corpus(const std::string& root,
                                  const std::vector<std::string>& paths) {
  Corpus corpus;
  std::error_code ec;
  corpus.root = fs::weakly_canonical(fs::path(root), ec).string();
  if (ec) corpus.root = root;

  std::vector<std::string> files;
  for (const std::string& p : paths) {
    const fs::path path(p);
    if (fs::is_regular_file(path, ec)) {
      files.push_back(fs::weakly_canonical(path, ec).string());
    } else if (fs::is_directory(path, ec)) {
      for (auto it = fs::recursive_directory_iterator(path, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file(ec) && is_source_file(it->path())) {
          files.push_back(fs::weakly_canonical(it->path(), ec).string());
        }
      }
    } else {
      std::fprintf(stderr, "flexnets_analyze: no such path: %s\n", p.c_str());
      return std::nullopt;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  for (const std::string& abs : files) {
    std::ifstream in(abs, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "flexnets_analyze: cannot read: %s\n",
                   abs.c_str());
      return std::nullopt;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    FileData fd;
    fd.abs_path = abs;
    fd.rel_path =
        fs::relative(fs::path(abs), fs::path(corpus.root), ec).generic_string();
    if (ec || fd.rel_path.empty() || fd.rel_path.front() == '.') {
      fd.rel_path = abs;  // outside the root: keep absolute
    }
    fd.module = module_of(fd.rel_path);
    fd.lx = lex(buf.str());
    for (const Comment& c : fd.lx.comments) {
      std::set<std::string> rules = parse_allow(c.text);
      if (!rules.empty()) {
        fd.allows[c.line].insert(rules.begin(), rules.end());
      }
    }
    corpus.files.push_back(std::move(fd));
  }
  std::sort(corpus.files.begin(), corpus.files.end(),
            [](const FileData& a, const FileData& b) {
              return a.rel_path < b.rel_path;
            });
  return corpus;
}

std::size_t match_forward(const std::vector<Token>& t, std::size_t i) {
  if (i >= t.size()) return t.size();
  const std::string& open = t[i].text;
  const bool angle = open == "<";
  const char* close = open == "(" ? ")" : open == "{" ? "}" : ">";
  int depth = 0;
  for (std::size_t k = i; k < t.size(); ++k) {
    const std::string& x = t[k].text;
    if (x == open) {
      ++depth;
    } else if (x == close) {
      if (--depth == 0) return k;
    } else if (angle) {
      if (x == ">>") {
        depth -= 2;
        if (depth <= 0) return k;
      } else if (x == ";" || x == "{") {
        return t.size();  // not a template-argument list after all
      }
    }
  }
  return t.size();
}

std::vector<std::string> class_context(const std::vector<Token>& t) {
  std::vector<std::string> ctx(t.size());
  std::vector<std::string> stack;  // one entry per open `{`; "" = non-class
  std::string current;             // innermost class name, "" outside
  for (std::size_t i = 0; i < t.size(); ++i) {
    ctx[i] = current;
    const std::string& x = t[i].text;
    if (x == "{") {
      std::string opens;
      // Was this `{` opened by `class`/`struct` NAME [final] [: bases]?
      for (std::size_t k = i; k-- > 0;) {
        const std::string& y = t[k].text;
        if (y == ";" || y == "{" || y == "}" || y == ")") break;
        if ((y == "class" || y == "struct") &&
            !(k > 0 && t[k - 1].text == "enum")) {
          // Name: last plain ident between the keyword and `{` / `:`.
          for (std::size_t m = k + 1; m < i; ++m) {
            if (t[m].text == ":") break;
            if (t[m].kind == TokKind::kIdent && t[m].text != "final" &&
                t[m].text != "alignas" && t[m].text != "nodiscard") {
              opens = t[m].text;
            }
          }
          break;
        }
      }
      stack.push_back(opens);
      if (!opens.empty()) current = opens;
    } else if (x == "}") {
      if (!stack.empty()) {
        stack.pop_back();
        current.clear();
        for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
          if (!it->empty()) {
            current = *it;
            break;
          }
        }
      }
    }
  }
  return ctx;
}

std::size_t match_back(const std::vector<Token>& t, std::size_t i) {
  if (i >= t.size() || t[i].text != ")") return t.size();
  int depth = 0;
  for (std::size_t k = i + 1; k-- > 0;) {
    if (t[k].text == ")") ++depth;
    if (t[k].text == "(") {
      if (--depth == 0) return k;
    }
  }
  return t.size();
}

}  // namespace flexnets::analyze
