// flexnets_analyze — cross-TU static analyzer for the flexnets tree.
//
// Usage:
//   flexnets_analyze [paths...] [--repo-root DIR] [--layering FILE]
//   flexnets_analyze --self-test [--repo-root DIR]
//
// Passes (each suppressible per line with `// flexnets-lint: allow(rule)`):
//   layering, include-cycle   include-graph contract (tools/layering.json)
//   status-discard,           Status/StatusOr discipline
//   statusor-unchecked
//   lock-annotation           FLEXNETS_GUARDED_BY / _ATOMIC_SHARED /
//                             _SHARED_READONLY verification
//   raw-rng, wall-clock, time-float-eq, unordered-iter, raw-thread,
//   hard-exit, priority-queue ported determinism/containment rules
//   process-api               raw fork/exec/waitpid/kill/... outside
//                             src/sweep/process_supervisor.cpp
//   unused-suppression        an allow() that suppressed nothing
//
// Exit codes: 0 clean, 1 findings (or self-test mismatch), 2 usage/IO.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis.hpp"

namespace {

namespace fs = std::filesystem;
using namespace flexnets::analyze;

// The repo root is wherever tools/layering.json lives: the given (or
// current) directory, else the nearest ancestor.
std::string find_repo_root(const std::string& start) {
  std::error_code ec;
  fs::path p = fs::weakly_canonical(fs::path(start), ec);
  if (ec) p = fs::path(start);
  for (int up = 0; up < 8; ++up) {
    if (fs::is_regular_file(p / "tools" / "layering.json", ec)) {
      return p.string();
    }
    if (!p.has_parent_path() || p.parent_path() == p) break;
    p = p.parent_path();
  }
  return start;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [paths...] [--repo-root DIR] [--layering FILE] "
               "[--self-test]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string repo_root;
  std::string layering_path;
  bool self_test = false;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--self-test") == 0) {
      self_test = true;
    } else if (std::strcmp(a, "--repo-root") == 0 && i + 1 < argc) {
      repo_root = argv[++i];
    } else if (std::strcmp(a, "--layering") == 0 && i + 1 < argc) {
      layering_path = argv[++i];
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      usage(argv[0]);
      return 0;
    } else if (a[0] == '-') {
      return usage(argv[0]);
    } else {
      paths.push_back(a);
    }
  }

  if (repo_root.empty()) repo_root = find_repo_root(".");
  std::error_code ec;
  const std::string root =
      fs::weakly_canonical(fs::path(repo_root), ec).string();
  if (layering_path.empty()) {
    layering_path = (fs::path(root) / "tools" / "layering.json").string();
  }

  if (self_test) return run_self_test(root, layering_path);

  const auto contract = load_layering(layering_path);
  if (!contract) return 2;

  if (paths.empty()) paths.push_back((fs::path(root) / "src").string());
  const auto corpus = load_corpus(root, paths);
  if (!corpus) return 2;

  Reporter rep;
  run_rule_pass(*corpus, rep);
  run_layering_pass(*corpus, *contract, rep);
  run_status_pass(*corpus, rep);
  run_lock_pass(*corpus, rep);
  rep.finalize(*corpus);

  for (const Finding& f : rep.findings()) {
    std::printf("%s:%d: [%s] %s\n", f.path.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  if (!rep.findings().empty()) {
    std::fprintf(stderr, "flexnets_analyze: %zu finding(s)\n",
                 rep.findings().size());
    return 1;
  }
  return 0;
}
