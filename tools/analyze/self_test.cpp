// --self-test: every pass runs over the seeded fixture corpus and the
// result must match the `EXPECT-LINT: rule[, rule]` annotations exactly —
// expected findings that do not fire AND findings nobody expected both
// fail. Two scans:
//
//   1. tests/analyze_fixtures/{rules,status,locks,suppress} analyzed with
//      the repo root as analysis root (all passes; the layering pass runs
//      but these files live in the top layer, so it must stay silent).
//   2. tests/analyze_fixtures/layering_tree analyzed as its own root — a
//      miniature src/ tree holding a deliberate layering violation, an
//      include cycle, and a cross-module SHARED_READONLY write, judged
//      against the real tools/layering.json contract.

#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "analysis.hpp"

namespace flexnets::analyze {

namespace fs = std::filesystem;

namespace {

using Key = std::tuple<std::string, int, std::string>;  // (path, line, rule)

// Parses "EXPECT-LINT: rule-a, rule-b" out of a comment.
std::vector<std::string> parse_expect(const std::string& comment) {
  std::vector<std::string> rules;
  std::size_t p = comment.find("EXPECT-LINT:");
  if (p == std::string::npos) return rules;
  p += 12;
  while (p < comment.size()) {
    while (p < comment.size() &&
           (comment[p] == ' ' || comment[p] == '\t' || comment[p] == ',')) {
      ++p;
    }
    std::string rule;
    while (p < comment.size() &&
           ((comment[p] >= 'a' && comment[p] <= 'z') || comment[p] == '-')) {
      rule.push_back(comment[p++]);
    }
    if (rule.empty()) break;
    rules.push_back(std::move(rule));
  }
  return rules;
}

// Runs every pass over `corpus` and returns the finalized findings.
std::vector<Finding> run_all(const Corpus& corpus,
                             const LayeringContract& contract) {
  Reporter rep;
  run_rule_pass(corpus, rep);
  run_layering_pass(corpus, contract, rep);
  run_status_pass(corpus, rep);
  run_lock_pass(corpus, rep);
  rep.finalize(corpus);
  return rep.findings();
}

// Compares findings against the corpus's EXPECT-LINT annotations.
// Returns the number of expectations on success via *num_expected.
bool compare(const Corpus& corpus, const std::vector<Finding>& findings,
             const char* label, std::size_t* num_expected) {
  std::set<Key> expected;
  for (const FileData& f : corpus.files) {
    for (const Comment& c : f.lx.comments) {
      for (const std::string& rule : parse_expect(c.text)) {
        expected.insert({f.rel_path, c.line, rule});
      }
    }
  }
  std::set<Key> got;
  for (const Finding& f : findings) {
    got.insert({f.path, f.line, f.rule});
  }
  bool ok = true;
  for (const Key& k : expected) {
    if (got.count(k) == 0) {
      std::printf("self-test[%s]: expected finding did not fire: "
                  "%s:%d [%s]\n",
                  label, std::get<0>(k).c_str(), std::get<1>(k),
                  std::get<2>(k).c_str());
      ok = false;
    }
  }
  for (const Key& k : got) {
    if (expected.count(k) == 0) {
      std::printf("self-test[%s]: unexpected finding: %s:%d [%s]\n", label,
                  std::get<0>(k).c_str(), std::get<1>(k),
                  std::get<2>(k).c_str());
      ok = false;
    }
  }
  *num_expected += expected.size();
  return ok;
}

}  // namespace

int run_self_test(const std::string& repo_root,
                  const std::string& layering_path) {
  const auto contract = load_layering(layering_path);
  if (!contract) return 1;

  const fs::path fixtures =
      fs::path(repo_root) / "tests" / "analyze_fixtures";
  std::vector<std::string> flat_paths;
  for (const char* sub : {"rules", "status", "locks", "suppress"}) {
    const fs::path p = fixtures / sub;
    std::error_code ec;
    if (!fs::is_directory(p, ec)) {
      std::fprintf(stderr, "flexnets_analyze: missing fixture dir %s\n",
                   p.string().c_str());
      return 1;
    }
    flat_paths.push_back(p.string());
  }

  bool ok = true;
  std::size_t num_expected = 0;

  const auto flat = load_corpus(repo_root, flat_paths);
  if (!flat) return 1;
  ok &= compare(*flat, run_all(*flat, *contract), "fixtures", &num_expected);

  const fs::path tree = fixtures / "layering_tree";
  const auto tree_corpus = load_corpus(tree.string(), {tree.string()});
  if (!tree_corpus) return 1;
  ok &= compare(*tree_corpus, run_all(*tree_corpus, *contract),
                "layering-tree", &num_expected);

  if (ok) {
    std::printf("self-test OK: %zu expected findings fired across "
                "tests/analyze_fixtures\n",
                num_expected);
  }
  return ok ? 0 : 1;
}

}  // namespace flexnets::analyze
