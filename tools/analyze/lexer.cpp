#include "token.hpp"

#include <cctype>
#include <cstddef>

namespace flexnets::analyze {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character operators, longest first within each leading char.
// (">>" and "<<" stay single tokens; template-argument skipping treats a
// ">>" as closing two levels.)
const char* const kMultiOps[] = {
    "->*", "<<=", ">>=", "...", "::", "->", "==", "!=", "<=", ">=",
    "&&",  "||",  "<<",  ">>", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=",  "^=",  "++",  "--",
};

struct Lexer {
  const std::string& s;
  std::size_t i = 0;
  int line = 1;
  LexResult out;

  explicit Lexer(const std::string& text) : s(text) {}

  char cur() const { return i < s.size() ? s[i] : '\0'; }
  char peek(std::size_t k = 1) const {
    return i + k < s.size() ? s[i + k] : '\0';
  }

  void advance() {
    if (cur() == '\n') ++line;
    ++i;
  }

  void push(TokKind kind, std::string text, int at_line) {
    out.tokens.push_back(Token{kind, std::move(text), at_line});
  }

  // --- comments ----------------------------------------------------------

  void line_comment() {
    const int at = line;
    i += 2;
    std::string text;
    while (i < s.size() && s[i] != '\n') text.push_back(s[i++]);
    out.comments.push_back(Comment{at, std::move(text)});
  }

  void block_comment() {
    const int at = line;
    i += 2;
    std::string text;
    while (i < s.size() && !(s[i] == '*' && peek() == '/')) {
      text.push_back(cur());
      advance();
    }
    if (i < s.size()) i += 2;  // past */
    out.comments.push_back(Comment{at, std::move(text)});
  }

  // --- literals ----------------------------------------------------------

  // `i` is at the opening quote. An unterminated literal stops at newline
  // (best effort; real compilers reject the TU anyway).
  void quoted(char quote, TokKind kind) {
    const int at = line;
    advance();  // opening quote
    std::string text;
    while (i < s.size() && s[i] != quote && s[i] != '\n') {
      if (s[i] == '\\' && i + 1 < s.size()) {
        text.push_back(s[i]);
        advance();
      }
      text.push_back(cur());
      advance();
    }
    if (cur() == quote) advance();
    push(kind, std::move(text), at);
  }

  // `i` is at the R of R"delim( ... )delim".
  void raw_string() {
    const int at = line;
    ++i;  // R
    ++i;  // "
    std::string delim;
    while (i < s.size() && s[i] != '(' && delim.size() < 16) {
      delim.push_back(s[i++]);
    }
    if (cur() == '(') advance();
    const std::string closer = ")" + delim + "\"";
    std::string text;
    while (i < s.size() && s.compare(i, closer.size(), closer) != 0) {
      text.push_back(cur());
      advance();
    }
    if (i < s.size()) i += closer.size();
    push(TokKind::kString, std::move(text), at);
  }

  // True if the identifier starting at `i` is a raw/encoded string prefix
  // immediately followed by a quote (R"..., u8R"..., L"...", etc.).
  bool string_prefix(std::size_t* quote_at, bool* raw) const {
    std::size_t k = i;
    while (k < s.size() && is_ident_char(s[k]) && k - i <= 3) ++k;
    if (k >= s.size() || s[k] != '"') return false;
    const std::string prefix = s.substr(i, k - i);
    static const char* const kPrefixes[] = {"u8", "u", "U", "L"};
    static const char* const kRawPrefixes[] = {"R",  "u8R", "uR",
                                               "UR", "LR"};
    for (const char* p : kRawPrefixes) {
      if (prefix == p) {
        *quote_at = k;
        *raw = true;
        return true;
      }
    }
    for (const char* p : kPrefixes) {
      if (prefix == p) {
        *quote_at = k;
        *raw = false;
        return true;
      }
    }
    return false;
  }

  // --- preprocessor ------------------------------------------------------

  // `i` is at '#' and it is the first non-whitespace on the line. Collects
  // the logical line (joining backslash continuations), extracts any
  // #include target, and still records // comments inside it so
  // suppressions work on include lines.
  void pp_line() {
    const int at = line;
    std::string text;
    while (i < s.size()) {
      if (s[i] == '\\' && peek() == '\n') {
        text.push_back(' ');
        advance();
        advance();
        continue;
      }
      if (s[i] == '\n') break;
      if (s[i] == '/' && peek() == '/') {
        line_comment();
        break;
      }
      if (s[i] == '/' && peek() == '*') {
        block_comment();
        text.push_back(' ');
        continue;
      }
      text.push_back(cur());
      advance();
    }
    PpLine pp{at, text, "", false};
    std::size_t p = text.find_first_not_of(" \t", 1);  // past '#'
    if (p != std::string::npos && text.compare(p, 7, "include") == 0) {
      p = text.find_first_not_of(" \t", p + 7);
      if (p != std::string::npos && (text[p] == '"' || text[p] == '<')) {
        const char close = text[p] == '"' ? '"' : '>';
        const std::size_t end = text.find(close, p + 1);
        if (end != std::string::npos) {
          pp.include_target = text.substr(p + 1, end - p - 1);
          pp.include_quoted = text[p] == '"';
        }
      }
    }
    out.pp.push_back(std::move(pp));
  }

  // --- main loop ---------------------------------------------------------

  void run() {
    bool at_line_start = true;  // only whitespace seen so far on this line
    while (i < s.size()) {
      const char c = s[i];
      if (c == '\n') {
        at_line_start = true;
        advance();
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        advance();
        continue;
      }
      if (c == '\\' && peek() == '\n') {  // splice outside pp: skip
        advance();
        advance();
        continue;
      }
      if (c == '/' && peek() == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && peek() == '*') {
        block_comment();
        at_line_start = false;
        continue;
      }
      if (c == '#' && at_line_start) {
        pp_line();
        at_line_start = false;
        continue;
      }
      at_line_start = false;
      if (c == '"') {
        quoted('"', TokKind::kString);
        continue;
      }
      if (c == '\'') {
        // Could be a digit separator only inside a number, which the
        // number scanner consumes; a bare ' here starts a char literal.
        quoted('\'', TokKind::kChar);
        continue;
      }
      if (is_ident_start(c)) {
        std::size_t quote_at = 0;
        bool raw = false;
        if (string_prefix(&quote_at, &raw)) {
          if (raw) {
            // Reposition to R (the char before the quote) for raw_string.
            i = quote_at - 1;
            raw_string();
          } else {
            i = quote_at;
            quoted('"', TokKind::kString);
          }
          continue;
        }
        const int at = line;
        std::string text;
        while (i < s.size() && is_ident_char(s[i])) text.push_back(s[i++]);
        push(TokKind::kIdent, std::move(text), at);
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(peek())))) {
        const int at = line;
        std::string text;
        while (i < s.size() &&
               (is_ident_char(s[i]) || s[i] == '.' || s[i] == '\'' ||
                ((s[i] == '+' || s[i] == '-') && i > 0 &&
                 (s[i - 1] == 'e' || s[i - 1] == 'E' || s[i - 1] == 'p' ||
                  s[i - 1] == 'P')))) {
          text.push_back(s[i++]);
        }
        push(TokKind::kNumber, std::move(text), at);
        continue;
      }
      // Punctuation: longest multi-char operator first.
      {
        const int at = line;
        bool matched = false;
        for (const char* op : kMultiOps) {
          const std::size_t len = std::char_traits<char>::length(op);
          if (s.compare(i, len, op) == 0) {
            push(TokKind::kPunct, op, at);
            i += len;
            matched = true;
            break;
          }
        }
        if (!matched) {
          push(TokKind::kPunct, std::string(1, c), at);
          advance();
        }
      }
    }
  }
};

}  // namespace

LexResult lex(const std::string& text) {
  Lexer lx(text);
  lx.run();
  return std::move(lx.out);
}

}  // namespace flexnets::analyze
