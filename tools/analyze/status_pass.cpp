// Status discipline, cross-TU.
//
// Phase 1 walks the whole corpus collecting the names of functions whose
// declared return type is Status or StatusOr<...> (free functions and
// methods alike — declarations in headers make callers in other TUs
// checkable, which is the point of corpus-wide collection).
//
// Phase 2 then flags:
//   status-discard      a call to such a function used as a bare
//                       expression statement — the Status is dropped on
//                       the floor. `(void)f(...)` is an explicit,
//                       greppable discard and stays legal.
//   statusor-unchecked  `x.value()` on a variable initialized from a
//                       StatusOr-returning call with no `x.ok()` /
//                       `x.status()` sighted since the initialization.
//
// This is a heuristic, not a dataflow engine: the [[nodiscard]] attribute
// on Status/StatusOr (common/status.hpp) is the compile-time backstop;
// this pass catches the cross-TU and `.value()`-dominance shapes the
// compiler attribute cannot express.

#include <set>
#include <string>
#include <vector>

#include "analysis.hpp"

namespace flexnets::analyze {

namespace {

bool is_status_type(const std::vector<Token>& t, std::size_t i,
                    std::size_t* after) {
  // Accepts `Status`, `StatusOr<...>`, optionally `flexnets::`-qualified.
  std::size_t k = i;
  if (tok_is(t, k, "flexnets") && tok_is(t, k + 1, "::")) k += 2;
  if (!(tok_is(t, k, "Status") || tok_is(t, k, "StatusOr"))) return false;
  const bool is_or = t[k].text == "StatusOr";
  ++k;
  if (is_or) {
    if (!tok_is(t, k, "<")) return false;
    k = match_forward(t, k);
    if (k >= t.size()) return false;
    ++k;
  }
  *after = k;
  return true;
}

// Collects names of functions declared/defined to return Status or
// StatusOr. Pattern: <status-type> [&]* [Qualifier::]* name ( — where the
// type is not preceded by tokens that make it a parameter or a variable
// declaration (`(`, `,`) and `name(` is a declarator, not a call (calls
// have `.`/`->` receivers or are themselves preceded by idents only when
// declaring).
void collect_status_functions(const Corpus& corpus,
                              std::set<std::string>* status_fns,
                              std::set<std::string>* statusor_fns) {
  for (const FileData& f : corpus.files) {
    const auto& t = f.lx.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (!(tok_is(t, i, "Status") || tok_is(t, i, "StatusOr"))) continue;
      // The type must start a declaration: previous token is not a
      // member-access/scope operator (that would be an expression) and not
      // `<` (nested template argument).
      if (i > 0) {
        const std::string& p = t[i - 1].text;
        if (p == "." || p == "->" || p == "<" || p == ",") continue;
        if (p == "::" && !(i >= 2 && t[i - 2].text == "flexnets")) continue;
      }
      std::size_t k;
      std::size_t start = i;
      if (i >= 2 && t[i - 1].text == "::" && t[i - 2].text == "flexnets") {
        start = i - 2;
      }
      if (!is_status_type(t, start, &k)) continue;
      const bool is_or = t[start].text == "StatusOr" ||
                         (start + 2 < t.size() && t[start + 2].text == "StatusOr");
      // Skip references/pointers in the declarator.
      while (tok_is(t, k, "&") || tok_is(t, k, "*")) ++k;
      // Walk `Qualifier::` chains to the terminal name.
      std::size_t name = t.size();
      while (k + 1 < t.size() && t[k].kind == TokKind::kIdent) {
        if (t[k + 1].text == "::") {
          k += 2;
          continue;
        }
        name = k;
        break;
      }
      if (name >= t.size() || !tok_is(t, name + 1, "(")) continue;
      if (is_or) {
        statusor_fns->insert(t[name].text);
      } else {
        status_fns->insert(t[name].text);
      }
    }
  }
}

// Walks back from the first token of a call chain to decide whether the
// full expression statement begins there. Returns true when the token
// before `start` ends a statement / begins a block — i.e. the call's
// result cannot be consumed by anything.
bool starts_statement(const std::vector<Token>& t, std::size_t start) {
  if (start == 0) return true;
  const std::string& p = t[start - 1].text;
  if (p == ";" || p == "{" || p == "}" || p == ":") return true;
  if (p == "else" || p == "do") return true;
  if (p == ")") {
    // `if (...) f();` — still a discard. But `(void) f();` is the
    // sanctioned explicit discard; recognize the exact (void) form:
    // `(` at start-3, `void` at start-2, `)` at start-1.
    const std::size_t open = match_back(t, start - 1);
    if (open + 3 == start && tok_is(t, open + 1, "void")) return false;
    return true;
  }
  return false;
}

// From a call's name token, walk back over the receiver chain
// (`a.b->c::name`) including `)`-returning sub-calls, to the chain start.
std::size_t chain_start(const std::vector<Token>& t, std::size_t name) {
  std::size_t k = name;
  while (k >= 2) {
    const std::string& p = t[k - 1].text;
    if (p != "." && p != "->" && p != "::") break;
    std::size_t recv = k - 2;
    if (t[recv].text == ")") {
      const std::size_t open = match_back(t, recv);
      if (open == t.size() || open == 0) break;
      recv = open - 1;  // the callee name of the sub-call
      if (t[recv].kind != TokKind::kIdent) break;
    } else if (t[recv].kind != TokKind::kIdent) {
      break;
    }
    k = recv;
  }
  return k;
}

// Variables/parameters in this file declared with a std:: type
// (`std::string* out`, `std::ofstream log`). A method call through such a
// receiver can never return our Status — `out->append(...)` is
// std::string::append, not Journal::append — so name-based matching must
// not flag it.
std::set<std::string> collect_std_vars(const std::vector<Token>& t) {
  std::set<std::string> vars;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!(tok_is(t, i, "std") && tok_is(t, i + 1, "::") &&
          t[i + 2].kind == TokKind::kIdent)) {
      continue;
    }
    std::size_t k = i + 3;
    if (tok_is(t, k, "<")) {
      k = match_forward(t, k);
      if (k >= t.size()) continue;
      ++k;
    }
    while (tok_is(t, k, "&") || tok_is(t, k, "*") || tok_is(t, k, "&&")) ++k;
    if (k + 1 < t.size() && t[k].kind == TokKind::kIdent) {
      const std::string& after = t[k + 1].text;
      if (after == ";" || after == "=" || after == "," || after == ")" ||
          after == "{" || after == "(") {
        vars.insert(t[k].text);
      }
    }
  }
  return vars;
}

void run_file(const FileData& f, const std::set<std::string>& status_fns,
              const std::set<std::string>& statusor_fns, Reporter& rep) {
  const auto& t = f.lx.tokens;
  const std::set<std::string> std_vars = collect_std_vars(t);

  // Variables holding a StatusOr in this file, in token order:
  // name -> index of the last `.ok()`/`.status()` sighting (or the decl).
  std::set<std::string> statusor_vars;
  std::set<std::string> checked_vars;

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const std::string& x = t[i].text;
    const bool returns_status = status_fns.count(x) > 0;
    const bool returns_statusor = statusor_fns.count(x) > 0;

    // --- track StatusOr-holding variables -------------------------------
    // `auto v = f(...)` / `auto v = obj.f(...)` / `StatusOr<T> v = ...;`
    if ((x == "auto" || x == "StatusOr") && i + 1 < t.size()) {
      std::size_t name = i + 1;
      if (x == "StatusOr") {
        if (!tok_is(t, name, "<")) continue;
        name = match_forward(t, name);
        if (name >= t.size()) continue;
        ++name;
      }
      if (name < t.size() && t[name].kind == TokKind::kIdent &&
          tok_is(t, name + 1, "=")) {
        bool from_statusor = t[i].text == "StatusOr";
        // Scan the initializer up to `;` for a StatusOr-returning call.
        for (std::size_t k = name + 2; k < t.size() && t[k].text != ";";
             ++k) {
          if (t[k].kind == TokKind::kIdent &&
              statusor_fns.count(t[k].text) > 0 && tok_is(t, k + 1, "(")) {
            from_statusor = true;
            break;
          }
        }
        if (from_statusor) {
          statusor_vars.insert(t[name].text);
          checked_vars.erase(t[name].text);
        }
        continue;
      }
    }

    // `v.ok()` / `v.status()` marks v checked from here on.
    if ((x == "ok" || x == "status") && tok_is(t, i + 1, "(") && i >= 2 &&
        (t[i - 1].text == "." || t[i - 1].text == "->") &&
        t[i - 2].kind == TokKind::kIdent &&
        statusor_vars.count(t[i - 2].text) > 0) {
      checked_vars.insert(t[i - 2].text);
    }

    // `v.value()` (incl. `std::move(v).value()`) on an unchecked v.
    if (x == "value" && tok_is(t, i + 1, "(") && i >= 2 &&
        (t[i - 1].text == "." || t[i - 1].text == "->")) {
      std::string var;
      if (t[i - 2].kind == TokKind::kIdent) {
        var = t[i - 2].text;
      } else if (t[i - 2].text == ")") {
        // std::move(v).value()
        const std::size_t open = match_back(t, i - 2);
        if (open != t.size() && open >= 1 && tok_is(t, open - 1, "move") &&
            open + 1 < t.size() &&
            t[open + 1].kind == TokKind::kIdent &&
            tok_is(t, open + 2, ")")) {
          var = t[open + 1].text;
        }
      }
      if (!var.empty() && statusor_vars.count(var) > 0 &&
          checked_vars.count(var) == 0) {
        rep.emit(f, t[i].line, "statusor-unchecked",
                 "`" + var +
                     ".value()` without a dominating `" + var +
                     ".ok()` / `" + var +
                     ".status()` check aborts on error paths; check first "
                     "or propagate with FLEXNETS_RETURN_IF_ERROR");
      }
    }

    // --- discarded Status/StatusOr-returning calls ----------------------
    if (!(returns_status || returns_statusor)) continue;
    if (!tok_is(t, i + 1, "(")) continue;
    // A declaration (`Status name(...)`) has a type ident directly before
    // the name; a call's previous token is punctuation or a keyword-like
    // statement head. Two adjacent idents can only be declarations.
    if (i > 0 && t[i - 1].kind == TokKind::kIdent &&
        t[i - 1].text != "return" && t[i - 1].text != "else" &&
        t[i - 1].text != "do" && t[i - 1].text != "co_return") {
      continue;
    }
    const std::size_t close = match_forward(t, i + 1);
    if (close >= t.size() || !tok_is(t, close + 1, ";")) continue;
    // Calls through a std::-typed receiver are std library methods that
    // happen to share a name with a Status-returning function.
    if (i >= 2 && (t[i - 1].text == "." || t[i - 1].text == "->") &&
        t[i - 2].kind == TokKind::kIdent &&
        std_vars.count(t[i - 2].text) > 0) {
      continue;
    }
    const std::size_t start = chain_start(t, i);
    if (!starts_statement(t, start)) continue;
    rep.emit(f, t[i].line, "status-discard",
             "result of `" + t[i].text +
                 "(...)` (returns Status/StatusOr) is discarded; handle "
                 "it, propagate it, or discard explicitly with `(void)`");
  }
}

}  // namespace

void run_status_pass(const Corpus& corpus, Reporter& rep) {
  std::set<std::string> status_fns;
  std::set<std::string> statusor_fns;
  collect_status_functions(corpus, &status_fns, &statusor_fns);
  for (const FileData& f : corpus.files) {
    run_file(f, status_fns, statusor_fns, rep);
  }
}

}  // namespace flexnets::analyze
