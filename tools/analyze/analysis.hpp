// Shared pass infrastructure for flexnets_analyze.
//
// A run lexes every file into a Corpus (so cross-TU passes see the whole
// tree at once), then each pass emits findings through the Reporter,
// which applies `// flexnets-lint: allow(<rule>)` suppressions and
// tracks which of them actually suppressed something — an allow() that
// never fires is itself a finding (`unused-suppression`), so stale
// suppressions cannot accumulate.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "token.hpp"

namespace flexnets::analyze {

struct Finding {
  std::string path;  // repo-root-relative
  int line = 0;
  std::string rule;
  std::string message;

  bool operator<(const Finding& o) const {
    if (path != o.path) return path < o.path;
    if (line != o.line) return line < o.line;
    return rule < o.rule;
  }
};

struct FileData {
  std::string abs_path;
  std::string rel_path;  // relative to the analysis root
  std::string module;    // "common", ..., "core", "tools", "tests", ...
  LexResult lx;
  // line -> rules allowed on that line (parsed from comments).
  std::map<int, std::set<std::string>> allows;
};

struct Corpus {
  std::string root;  // absolute analysis root
  std::vector<FileData> files;  // sorted by rel_path
};

class Reporter {
 public:
  // Emits unless an allow(rule) comment sits on `line` of `file`; a
  // suppressed finding marks that allow as used.
  void emit(const FileData& file, int line, const std::string& rule,
            const std::string& message);

  // Converts every allow() that suppressed nothing into an
  // `unused-suppression` finding. Call once, after all passes.
  void finalize(const Corpus& corpus);

  [[nodiscard]] const std::vector<Finding>& findings() const {
    return findings_;
  }

 private:
  std::vector<Finding> findings_;
  std::set<std::pair<std::string, int>> used_allows_;  // (rel_path, line)
};

// --- corpus construction --------------------------------------------------

// Maps a root-relative path to its layering module: "src/<m>/..." -> <m>,
// "<top>/..." -> <top> (tools, bench, tests, examples), "cli_x.cpp" in
// tools/ stays "tools". Files directly under the root map to "".
std::string module_of(const std::string& rel_path);

// Loads and lexes every .cpp/.hpp/.cc/.h under `paths` (files or
// directories), sorted for determinism. Returns std::nullopt and prints
// to stderr on I/O failure.
std::optional<Corpus> load_corpus(const std::string& root,
                                  const std::vector<std::string>& paths);

// --- token helpers shared by passes ---------------------------------------

inline bool tok_is(const std::vector<Token>& t, std::size_t i,
                   const char* text) {
  return i < t.size() && t[i].text == text;
}

// Index of the matching close for the open bracket at `i` ("(" or "{" or
// "<"), or t.size() if unbalanced. For "<", a ">>" token closes two
// levels and the search aborts on tokens that cannot appear in a
// template-argument list (";", "{").
std::size_t match_forward(const std::vector<Token>& t, std::size_t i);

// Index of the "(" matching the ")" at `i`, or npos-like t.size().
std::size_t match_back(const std::vector<Token>& t, std::size_t i);

// For each token, the name of the innermost enclosing class/struct body
// ("" outside any). One forward scan; `enum class` is not a class body.
std::vector<std::string> class_context(const std::vector<Token>& t);

// --- passes ---------------------------------------------------------------

// Ported determinism/containment rules (raw-rng, wall-clock,
// time-float-eq, unordered-iter, raw-thread, hard-exit, priority-queue).
void run_rule_pass(const Corpus& corpus, Reporter& rep);

// Include-graph layering + include-cycle detection against the contract.
struct LayeringContract {
  std::map<std::string, int> layer_of;  // module -> layer index (0 lowest)
  int num_layers = 0;
};
std::optional<LayeringContract> load_layering(const std::string& json_path);
void run_layering_pass(const Corpus& corpus, const LayeringContract& contract,
                       Reporter& rep);

// Status discipline: discarded Status/StatusOr-returning calls;
// `.value()` with no dominating ok()/status() check.
void run_status_pass(const Corpus& corpus, Reporter& rep);

// Lock annotations: FLEXNETS_GUARDED_BY fields touched without the named
// mutex held; FLEXNETS_ATOMIC_SHARED on non-atomic fields;
// FLEXNETS_SHARED_READONLY fields written outside their declaring module.
void run_lock_pass(const Corpus& corpus, Reporter& rep);

// --- self-test ------------------------------------------------------------

// Runs every pass over the fixture corpus under
// <repo_root>/tests/analyze_fixtures (including the layering_tree mini
// tree) and compares against EXPECT-LINT annotations. Returns 0 on
// success, 1 on any mismatch.
int run_self_test(const std::string& repo_root,
                  const std::string& layering_path);

}  // namespace flexnets::analyze
