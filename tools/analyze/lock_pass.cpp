// Lock-annotation verification (heuristic).
//
// Under clang the FLEXNETS_* macros expand to real thread-safety
// attributes and -Wthread-safety is the precise checker; this pass is the
// portable approximation that also runs under gcc, where the macros are
// no-ops. Three checks:
//
//   FLEXNETS_GUARDED_BY(mu)   every use of the field inside a member
//                             function of the owning class must have a
//                             lock_guard/unique_lock/scoped_lock on `mu`
//                             (or `mu.lock()`) visible in an enclosing
//                             scope, or the function must be annotated
//                             FLEXNETS_REQUIRES(mu). Constructors and
//                             destructors are exempt (single-threaded
//                             phases by contract).
//   FLEXNETS_ATOMIC_SHARED    the declared type must mention `atomic` —
//                             the annotation documents lock-free sharing,
//                             so a plain field wearing it is a lie.
//   FLEXNETS_SHARED_READONLY  built once, read many: variables of the
//                             owning class may not have the field
//                             assigned/mutated outside the class's own
//                             module.
//
// The scope walk is backward from the use site: a brace-depth counter
// finds each enclosing `{`; tokens in enclosing scopes are searched for a
// lock acquisition naming the mutex; lambdas and control-flow blocks are
// transparent; the walk ends at the function header, where the name,
// qualifier, and FLEXNETS_REQUIRES trailer are read.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis.hpp"

namespace flexnets::analyze {

namespace {

struct GuardedField {
  std::string name;
  std::string mutex;
  std::string owner_class;  // "" if not inside a class body
};

struct ReadonlyField {
  std::string name;
  std::string owner_class;
  std::string owner_module;
};

struct Annotations {
  std::vector<GuardedField> guarded;
  std::vector<ReadonlyField> readonly;
  // class name -> variable names declared with that class type, corpus-wide
  std::map<std::string, std::set<std::string>> vars_of_class;
};

bool is_specifier(const std::string& s) {
  return s == "const" || s == "noexcept" || s == "override" ||
         s == "final" || s == "mutable" || s == "inline" || s == "virtual";
}

// True if the declared type of the field at token `i` (walking back to the
// start of its declaration) mentions atomic.
bool decl_mentions_atomic(const std::vector<Token>& t, std::size_t i) {
  for (std::size_t k = i; k-- > 0;) {
    const std::string& y = t[k].text;
    if (y == ";" || y == "{" || y == "}") break;
    if (t[k].kind == TokKind::kIdent &&
        y.find("atomic") != std::string::npos) {
      return true;
    }
  }
  return false;
}

Annotations collect_annotations(const Corpus& corpus, Reporter& rep) {
  Annotations ann;
  for (const FileData& f : corpus.files) {
    const auto& t = f.lx.tokens;
    const std::vector<std::string> ctx = class_context(t);
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent) continue;
      const std::string& x = t[i].text;
      if (x == "FLEXNETS_GUARDED_BY" || x == "FLEXNETS_PT_GUARDED_BY") {
        if (i == 0 || t[i - 1].kind != TokKind::kIdent) continue;
        if (!tok_is(t, i + 1, "(") || i + 2 >= t.size()) continue;
        GuardedField g;
        g.name = t[i - 1].text;
        g.mutex = t[i + 2].text;
        g.owner_class = ctx[i];
        ann.guarded.push_back(std::move(g));
      } else if (x == "FLEXNETS_ATOMIC_SHARED") {
        if (i == 0 || t[i - 1].kind != TokKind::kIdent) continue;
        if (!decl_mentions_atomic(t, i - 1)) {
          rep.emit(f, t[i].line, "lock-annotation",
                   "field `" + t[i - 1].text +
                       "` is annotated FLEXNETS_ATOMIC_SHARED but its "
                       "declared type does not mention std::atomic; the "
                       "annotation promises lock-free sharing");
        }
      } else if (x == "FLEXNETS_SHARED_READONLY") {
        if (i == 0 || t[i - 1].kind != TokKind::kIdent) continue;
        ReadonlyField r;
        r.name = t[i - 1].text;
        r.owner_class = ctx[i];
        r.owner_module = f.module;
        ann.readonly.push_back(std::move(r));
      }
    }
  }
  // Variable names declared with an annotated class type (for the
  // SHARED_READONLY receiver check): `ThroughputCache x`, `const
  // ThroughputCache& x`, `ThroughputCache* x`.
  std::set<std::string> classes;
  for (const ReadonlyField& r : ann.readonly) {
    if (!r.owner_class.empty()) classes.insert(r.owner_class);
  }
  for (const FileData& f : corpus.files) {
    const auto& t = f.lx.tokens;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent || classes.count(t[i].text) == 0) {
        continue;
      }
      std::size_t k = i + 1;
      while (tok_is(t, k, "&") || tok_is(t, k, "*") || tok_is(t, k, "&&")) {
        ++k;
      }
      if (k < t.size() && t[k].kind == TokKind::kIdent &&
          !is_specifier(t[k].text)) {
        ann.vars_of_class[t[i].text].insert(t[k].text);
      }
    }
  }
  return ann;
}

// --- guarded-field use verification ---------------------------------------

bool is_mutator_name(const std::string& s) {
  return s == "push_back" || s == "pop_back" || s == "push_front" ||
         s == "pop_front" || s == "clear" || s == "resize" ||
         s == "insert" || s == "erase" || s == "emplace" ||
         s == "emplace_back" || s == "assign" || s == "reserve" ||
         s == "swap";
}

bool is_assign_op(const std::string& s) {
  return s == "=" || s == "+=" || s == "-=" || s == "*=" || s == "/=" ||
         s == "%=" || s == "&=" || s == "|=" || s == "^=" || s == "<<=" ||
         s == ">>=" || s == "++" || s == "--";
}

// Does the token window [from, to) acquire `mutex`? Looks for
// lock_guard/unique_lock/scoped_lock with the mutex among its constructor
// arguments (within a short window, no `;` crossed), or `mutex.lock()`.
bool window_acquires(const std::vector<Token>& t, std::size_t at,
                     const std::string& mutex) {
  const std::string& x = t[at].text;
  if (x == "lock_guard" || x == "unique_lock" || x == "scoped_lock") {
    for (std::size_t k = at + 1; k < t.size() && k < at + 14; ++k) {
      if (t[k].text == ";") break;
      if (t[k].kind == TokKind::kIdent && t[k].text == mutex) return true;
    }
  }
  if (x == mutex && tok_is(t, at + 1, ".") && tok_is(t, at + 2, "lock") &&
      tok_is(t, at + 3, "(")) {
    return true;
  }
  return false;
}

struct HeaderInfo {
  bool found = false;
  std::string fname;
  std::string qualifier;       // `Cls` from `Cls::fname`, "" otherwise
  bool requires_mutex = false; // FLEXNETS_REQUIRES names the mutex
  bool is_ctor_dtor = false;
};

// `body_open` is the index of a `{` suspected to open a function body.
// Reads the header to its left. Returns found=false if this `{` is not a
// function body (control block, lambda, plain scope, class, namespace...).
HeaderInfo read_header(const std::vector<Token>& t, std::size_t body_open,
                       const std::string& mutex) {
  HeaderInfo h;
  std::size_t j = body_open;
  // Walk left over trailing specifiers, REQUIRES macros, and the
  // constructor member-initializer list, down to the parameter list.
  while (j > 0) {
    const std::string& y = t[j - 1].text;
    if (t[j - 1].kind == TokKind::kIdent && is_specifier(y)) {
      --j;
      continue;
    }
    if (y != ")") return h;  // not a function header
    const std::size_t open = match_back(t, j - 1);
    if (open == t.size() || open == 0) return h;
    const std::size_t before = open - 1;
    if (t[before].kind != TokKind::kIdent) {
      // `](...)` would be a lambda; anything else is not a header.
      return h;
    }
    const std::string& name = t[before].text;
    if (name.rfind("FLEXNETS_", 0) == 0) {
      if (name == "FLEXNETS_REQUIRES") {
        for (std::size_t k = open + 1; k < j - 1; ++k) {
          if (t[k].text == mutex) h.requires_mutex = true;
        }
      }
      j = before;
      continue;
    }
    if (name == "if" || name == "for" || name == "while" ||
        name == "switch" || name == "catch") {
      return h;  // control block, not a function
    }
    const std::string prev = before > 0 ? t[before - 1].text : "";
    if (prev == "," || (prev == ":" && before >= 2 && t[before - 2].text == ")")) {
      // Member-initializer entry `..., name(expr)`: keep walking left from
      // just before it.
      j = before - 1;
      continue;
    }
    // The parameter list: `name` is the function.
    h.found = true;
    h.fname = name;
    if (prev == "~") {
      h.is_ctor_dtor = true;
      if (before >= 3 && t[before - 2].text == "::") {
        h.qualifier = t[before - 3].text;
      }
    } else if (prev == "::" && before >= 2) {
      h.qualifier = t[before - 2].text;
      if (h.qualifier == h.fname) h.is_ctor_dtor = true;
    }
    return h;
  }
  return h;
}

// For a use of a guarded field at token `i`, walk outward through
// enclosing scopes looking for a lock acquisition; on reaching the
// function header, decide.
void check_guarded_use(const FileData& f, const std::vector<Token>& t,
                       const std::vector<std::string>& ctx, std::size_t i,
                       const GuardedField& g, Reporter& rep) {
  int depth = 0;
  for (std::size_t k = i; k-- > 0;) {
    const std::string& y = t[k].text;
    if (y == "}") {
      --depth;
      continue;
    }
    if (y == "{") {
      if (++depth < 1) continue;  // closes a sibling scope we skipped over
      depth = 0;  // crossed into the enclosing scope
      // Function body? Read the header. Control blocks, lambdas, and
      // plain scopes are transparent: keep walking outward.
      HeaderInfo h = read_header(t, k, g.mutex);
      if (!h.found) {
        // `class X {` / `namespace X {`: the use is at class scope (a
        // default member initializer or the declaration itself) — out of
        // scope for the lock check.
        if (k > 0 && (t[k - 1].kind == TokKind::kIdent ||
                      t[k - 1].text == ":")) {
          for (std::size_t m = k; m-- > 0;) {
            const std::string& z = t[m].text;
            if (z == ";" || z == "{" || z == "}") break;
            if (z == "class" || z == "struct" || z == "namespace") return;
          }
        }
        continue;
      }
      if (h.requires_mutex || h.is_ctor_dtor) return;
      // Scope the check to the owning class: a same-named field of an
      // unrelated class is not ours to police.
      const std::string use_class =
          !h.qualifier.empty() ? h.qualifier : ctx[i];
      if (!g.owner_class.empty() && use_class != g.owner_class) return;
      if (h.fname == g.owner_class || (!h.qualifier.empty() &&
                                       h.qualifier == h.fname)) {
        return;  // constructor spelled without qualifier
      }
      rep.emit(f, t[i].line, "lock-annotation",
               "`" + g.name + "` is FLEXNETS_GUARDED_BY(" + g.mutex +
                   ") but `" + h.fname +
                   "` touches it with no lock on `" + g.mutex +
                   "` in scope; take a lock_guard or annotate the "
                   "function FLEXNETS_REQUIRES(" + g.mutex + ")");
      return;
    }
    if (depth == 0 && t[k].kind == TokKind::kIdent &&
        window_acquires(t, k, g.mutex)) {
      return;  // lock visibly held in an enclosing scope
    }
  }
}

void check_file(const FileData& f, const Annotations& ann, Reporter& rep) {
  const auto& t = f.lx.tokens;
  const std::vector<std::string> ctx = class_context(t);

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const std::string& x = t[i].text;

    // --- guarded fields ---
    for (const GuardedField& g : ann.guarded) {
      if (x != g.name) continue;
      // Skip the declaration itself (next token is the annotation macro).
      if (i + 1 < t.size() &&
          t[i + 1].text.rfind("FLEXNETS_", 0) == 0) {
        continue;
      }
      // Member access on some other object is untrackable; `this->` is us.
      if (i > 0) {
        const std::string& p = t[i - 1].text;
        if (p == "::") continue;
        if ((p == "." || p == "->") &&
            !(i >= 2 && t[i - 2].text == "this")) {
          continue;
        }
      }
      check_guarded_use(f, t, ctx, i, g, rep);
    }

    // --- SHARED_READONLY writes outside the owning module ---
    for (const ReadonlyField& r : ann.readonly) {
      if (f.module == r.owner_module) continue;
      if (x != r.name || i < 2) continue;
      const std::string& p = t[i - 1].text;
      if (p != "." && p != "->") continue;
      const auto vars = ann.vars_of_class.find(r.owner_class);
      if (vars == ann.vars_of_class.end() ||
          vars->second.count(t[i - 2].text) == 0) {
        continue;  // receiver is not a known variable of the owning class
      }
      bool writes = false;
      if (i + 1 < t.size() && is_assign_op(t[i + 1].text)) writes = true;
      if (i + 2 < t.size() && t[i + 1].text == "." &&
          is_mutator_name(t[i + 2].text)) {
        writes = true;
      }
      if (writes) {
        rep.emit(f, t[i].line, "lock-annotation",
                 "`" + r.name + "` is FLEXNETS_SHARED_READONLY (built once "
                     "by " + r.owner_module +
                     "/, then shared immutably); writing it from " +
                     (f.module.empty() ? std::string("outside") : f.module) +
                     "/ breaks the read-only sharing contract");
      }
    }
  }
}

}  // namespace

void run_lock_pass(const Corpus& corpus, Reporter& rep) {
  Annotations ann = collect_annotations(corpus, rep);
  for (const FileData& f : corpus.files) check_file(f, ann, rep);
}

}  // namespace flexnets::analyze
