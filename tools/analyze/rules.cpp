// Ports of the seven lint_flexnets.py rules onto the token stream.
//
// Matching on tokens (not text lines) removes the regex lint's structural
// blind spots: comments, string/char literals, and raw strings can no
// longer trip a rule, and `std::thread` split across lines still matches.
// The unordered-iter rule additionally goes cross-TU: container names are
// collected over the whole corpus (including class fields declared in
// headers), so iteration in a .cpp over a field declared in a .hpp is
// visible — something the per-file regex could never see.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis.hpp"

namespace flexnets::analyze {

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool file_exempt(const FileData& f, const char* const* suffixes,
                 std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    if (ends_with(f.rel_path, suffixes[k])) return true;
  }
  return false;
}

// The sanctioned homes, mirrored from the retired Python lint.
const char* const kRawThreadExempt[] = {"common/thread_pool.hpp",
                                        "common/thread_pool.cpp"};
const char* const kHardExitExempt[] = {"common/check.cpp",
                                       "common/status.cpp"};
const char* const kPriorityQueueExempt[] = {
    "sim/event_queue.hpp", "sim/event_queue.cpp",
    "flow/solver_internals.hpp", "flow/solver_internals.cpp"};
// The one file allowed to touch raw process APIs: everything else must
// go through ProcessSupervisor so fd hygiene (O_CLOEXEC, dup2 re-homing),
// PDEATHSIG, SIGPIPE handling, and reaping stay in a single audited place.
const char* const kProcessApiExempt[] = {"sweep/process_supervisor.cpp"};

// Raw process-control calls banned outside the supervisor.
const char* const kProcessApiNames[] = {
    "fork",   "vfork",       "execv", "execve", "execvp",      "execvpe",
    "execl",  "execle",      "execlp", "posix_spawn", "posix_spawnp",
    "waitpid", "wait3",      "wait4", "kill",   "killpg",      "raise",
    "system", "popen",       "daemon"};

bool is_process_api_name(const std::string& s) {
  for (const char* name : kProcessApiNames) {
    if (s == name) return true;
  }
  return false;
}

const char* rule_message(const std::string& rule) {
  if (rule == "raw-rng") {
    return "raw libc/std randomness; use the seeded splittable Rng "
           "(src/common/rng.hpp) so runs replay from one seed";
  }
  if (rule == "wall-clock") {
    return "wall-clock read inside simulation code; use simulated TimeNs "
           "(src/common/units.hpp)";
  }
  if (rule == "time-float-eq") {
    return "exact ==/!= on floating-point simulated time; compare integer "
           "TimeNs or use an epsilon";
  }
  if (rule == "unordered-iter") {
    return "iteration over an unordered container feeds "
           "implementation-defined order into deterministic output; "
           "iterate a sorted container instead";
  }
  if (rule == "raw-thread") {
    return "raw std::thread outside common/thread_pool; route parallel "
           "work through ThreadPool / core::run_indexed (exception "
           "propagation, drain-on-destruction, deterministic indexed "
           "scheduling)";
  }
  if (rule == "process-api") {
    return "raw process API (fork/exec/waitpid/kill/...) outside "
           "sweep/process_supervisor.cpp; route subprocess work through "
           "ProcessSupervisor so fd hygiene, PDEATHSIG, SIGPIPE, and "
           "reaping stay in one audited place";
  }
  if (rule == "priority-queue") {
    return "std::priority_queue outside sim/event_queue and "
           "flow/solver_internals; use EventQueue or DaryDijkstra "
           "(preallocated, reservable, move-out pop) instead of growing a "
           "new ad-hoc hot loop";
  }
  return "exit/abort/throw outside common/check.cpp and common/status.cpp "
         "kills or escapes a contained sweep; return a Status "
         "(common/status.hpp), use FLEXNETS_CHECK for invariants, or "
         "throw_status at a boundary that cannot return one";  // hard-exit
}

bool is_time_name(const std::string& s) {
  if (s == "now_sec" || s == "done_at" || s == "next_event") return true;
  return ends_with(s, "_sec") || ends_with(s, "_secs") ||
         ends_with(s, "_second") || ends_with(s, "_seconds");
}

bool is_time_call_name(const std::string& s) {
  return s == "to_seconds" || s == "to_millis" || s == "to_micros";
}

struct RulePass {
  const Corpus& corpus;
  Reporter& rep;
  // Unordered-container *fields* (declared at class scope), corpus-wide:
  // a .cpp iterating a field its header declared is visible cross-TU.
  std::set<std::string> unordered_fields;
  // Locals/globals stay per-file, like the Python lint, so a short local
  // name in one file cannot poison range-fors everywhere else.
  std::map<const FileData*, std::set<std::string>> unordered_locals;

  void collect_unordered() {
    for (const FileData& f : corpus.files) {
      const auto& t = f.lx.tokens;
      const std::vector<std::string> ctx = class_context(t);
      for (std::size_t i = 0; i + 2 < t.size(); ++i) {
        if (!(tok_is(t, i, "std") && tok_is(t, i + 1, "::") &&
              t[i + 2].text.rfind("unordered_", 0) == 0)) {
          continue;
        }
        std::size_t j = i + 3;
        if (tok_is(t, j, "<")) {
          j = match_forward(t, j);
          if (j >= t.size()) continue;
          ++j;
        }
        if (j < t.size() && t[j].kind == TokKind::kIdent &&
            j + 1 < t.size()) {
          const std::string& after = t[j + 1].text;
          if (after == ";" || after == "=" || after == "{" || after == "(" ||
              t[j + 1].kind == TokKind::kIdent /* annotation macro */) {
            if (!ctx[j].empty()) {
              unordered_fields.insert(t[j].text);
            } else {
              unordered_locals[&f].insert(t[j].text);
            }
          }
        }
      }
    }
  }

  bool is_unordered_name(const FileData& f, const std::string& name) const {
    if (unordered_fields.count(name) > 0) return true;
    const auto it = unordered_locals.find(&f);
    return it != unordered_locals.end() && it->second.count(name) > 0;
  }

  void run_file(const FileData& f) {
    const auto& t = f.lx.tokens;
    const bool thread_ok =
        file_exempt(f, kRawThreadExempt, std::size(kRawThreadExempt));
    const bool exit_ok =
        file_exempt(f, kHardExitExempt, std::size(kHardExitExempt));
    const bool pq_ok = file_exempt(f, kPriorityQueueExempt,
                                   std::size(kPriorityQueueExempt));
    const bool proc_ok =
        file_exempt(f, kProcessApiExempt, std::size(kProcessApiExempt));

    auto emit = [&](std::size_t i, const char* rule) {
      rep.emit(f, t[i].line, rule, rule_message(rule));
    };
    auto prev = [&](std::size_t i) -> const std::string& {
      static const std::string empty;
      return i > 0 ? t[i - 1].text : empty;
    };
    auto next = [&](std::size_t i) -> const std::string& {
      static const std::string empty;
      return i + 1 < t.size() ? t[i + 1].text : empty;
    };

    for (std::size_t i = 0; i < t.size(); ++i) {
      // --- time-float-eq (operator tokens, so checked before the ident
      // filter): ==/!= with a *_sec-style name or to_seconds()-style call
      // directly on either side ---
      if (t[i].kind == TokKind::kPunct &&
          (t[i].text == "==" || t[i].text == "!=")) {
        bool hit = false;
        if (i > 0 && t[i - 1].kind == TokKind::kIdent &&
            is_time_name(t[i - 1].text)) {
          hit = true;
        } else if (i > 0 && t[i - 1].text == ")") {
          const std::size_t open = match_back(t, i - 1);
          if (open > 0 && open < t.size() &&
              t[open - 1].kind == TokKind::kIdent &&
              is_time_call_name(t[open - 1].text)) {
            hit = true;
          }
        }
        if (!hit && i + 1 < t.size() && t[i + 1].kind == TokKind::kIdent) {
          if (is_time_name(t[i + 1].text) ||
              (is_time_call_name(t[i + 1].text) && tok_is(t, i + 2, "("))) {
            hit = true;
          }
        }
        if (hit) emit(i, "time-float-eq");
      }

      if (t[i].kind != TokKind::kIdent) continue;
      const std::string& x = t[i].text;

      // --- raw-rng ---
      if (x == "rand" || x == "srand") {
        const std::string& p = prev(i);
        if (p == "::") {
          if (i >= 2 && t[i - 2].text == "std") emit(i, "raw-rng");
        } else if (p != "." && p != "->" && next(i) == "(") {
          emit(i, "raw-rng");
        }
      } else if (x == "random_device") {
        emit(i, "raw-rng");
      } else if (x == "random_shuffle") {
        if (prev(i) == "::" && i >= 2 && t[i - 2].text == "std") {
          emit(i, "raw-rng");
        }
      } else if (x == "drand48" || x == "lrand48" || x == "mrand48") {
        emit(i, "raw-rng");
      }

      // --- wall-clock ---
      if (x == "chrono" && prev(i) == "::" && i >= 2 &&
          t[i - 2].text == "std" && tok_is(t, i + 1, "::") &&
          i + 2 < t.size()) {
        const std::string& clk = t[i + 2].text;
        if (clk == "system_clock" || clk == "steady_clock" ||
            clk == "high_resolution_clock") {
          emit(i, "wall-clock");
        }
      } else if ((x == "gettimeofday" || x == "clock_gettime" ||
                  x == "localtime" || x == "gmtime") &&
                 next(i) == "(" && prev(i) != "." && prev(i) != "->") {
        emit(i, "wall-clock");
      } else if (x == "clock" && next(i) == "(" && tok_is(t, i + 2, ")") &&
                 prev(i) != "." && prev(i) != "->" && prev(i) != "::") {
        emit(i, "wall-clock");
      } else if (x == "time" && next(i) == "(" && prev(i) != "." &&
                 prev(i) != "->" && prev(i) != "::") {
        const std::string& arg = i + 2 < t.size() ? t[i + 2].text : "";
        if ((arg == ")" || arg == "NULL" || arg == "nullptr" ||
             arg == "0") &&
            (arg == ")" || tok_is(t, i + 3, ")"))) {
          emit(i, "wall-clock");
        }
      }

      // --- raw-thread / priority-queue ---
      if ((x == "thread" || x == "jthread") && prev(i) == "::" && i >= 2 &&
          t[i - 2].text == "std" && next(i) != "::") {
        if (!thread_ok) emit(i - 2, "raw-thread");
      }
      if (x == "priority_queue" && prev(i) == "::" && i >= 2 &&
          t[i - 2].text == "std") {
        if (!pq_ok) emit(i - 2, "priority-queue");
      }

      // --- hard-exit ---
      if (x == "throw") {
        if (!exit_ok) emit(i, "hard-exit");
      } else if (x == "exit" || x == "_exit" || x == "_Exit" ||
                 x == "quick_exit" || x == "abort") {
        const std::string& p = prev(i);
        const bool qualified_std =
            p == "::" && (i < 2 || t[i - 2].text == "std" ||
                          t[i - 2].kind != TokKind::kIdent);
        if (next(i) == "(" && p != "." && p != "->" &&
            (p != "::" || qualified_std)) {
          if (!exit_ok) emit(i, "hard-exit");
        }
      }

      // --- process-api: free calls only. obj.kill() / x->fork() are
      // methods of some wrapper and fine; `::kill` / `std::system` are
      // exactly the raw calls being banned; `otherns::kill` is a wrapper.
      // A preceding type-ish token (`void kill(int)`) marks a wrapper
      // DECLARATION, not a call — `return`/`case` still read as calls.
      if (is_process_api_name(x) && next(i) == "(") {
        const std::string& p = prev(i);
        const bool qualified_global_or_std =
            p == "::" && (i < 2 || t[i - 2].text == "std" ||
                          t[i - 2].kind != TokKind::kIdent);
        const bool decl_like =
            (i > 0 && t[i - 1].kind == TokKind::kIdent && p != "return" &&
             p != "co_return" && p != "case" && p != "else" && p != "do") ||
            p == "*" || p == "&" || p == ">";
        if (p != "." && p != "->" && !decl_like &&
            (p != "::" || qualified_global_or_std)) {
          if (!proc_ok) emit(i, "process-api");
        }
      }

      // --- unordered-iter: name.begin() ---
      if ((x == "begin" || x == "cbegin") && next(i) == "(" &&
          (prev(i) == "." || prev(i) == "->") && i >= 2 &&
          is_unordered_name(f, t[i - 2].text)) {
        emit(i - 2, "unordered-iter");
      }

      // --- unordered-iter: range-for ---
      if (x == "for" && next(i) == "(") {
        const std::size_t close = match_forward(t, i + 1);
        if (close >= t.size()) continue;
        // Find a ':' at paren depth 1 ("::" is a distinct token).
        std::size_t colon = 0;
        int depth = 0;
        for (std::size_t k = i + 1; k < close; ++k) {
          const std::string& y = t[k].text;
          if (y == "(" || y == "[" || y == "{") ++depth;
          if (y == ")" || y == "]" || y == "}") --depth;
          if (y == ";") break;  // classic for, not range-for
          if (y == ":" && depth == 1) {
            colon = k;
            break;
          }
        }
        if (colon == 0) continue;
        for (std::size_t k = colon + 1; k < close; ++k) {
          if (t[k].kind != TokKind::kIdent) continue;
          if (t[k].text.rfind("unordered_", 0) == 0 ||
              is_unordered_name(f, t[k].text)) {
            emit(i, "unordered-iter");
            break;
          }
        }
      }
    }
  }
};

}  // namespace

void run_rule_pass(const Corpus& corpus, Reporter& rep) {
  RulePass pass{corpus, rep, {}, {}};
  pass.collect_unordered();
  for (const FileData& f : corpus.files) pass.run_file(f);
}

}  // namespace flexnets::analyze
