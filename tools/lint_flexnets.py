#!/usr/bin/env python3
"""flexnets-specific lint pass: bans determinism and correctness hazards
that generic tooling does not know about.

Rules (see docs/ARCHITECTURE.md, "Correctness tooling"):

  raw-rng        rand()/srand()/std::random_device/std::random_shuffle in
                 simulation code. Every stochastic draw must come from the
                 seeded splittable RNG (src/common/rng.hpp) so whole
                 experiments replay from one integer.
  wall-clock     Wall-clock reads (std::chrono clocks, time(), clock(),
                 gettimeofday, ...) inside the engines. Simulated time is
                 integer TimeNs; wall time silently breaks replay.
  time-float-eq  == / != on floating-point simulated-time values
                 (to_seconds()/to_millis()/to_micros() results, *_sec
                 variables). Exact comparison of derived doubles is a
                 rounding bug waiting to happen; compare integer TimeNs or
                 use an epsilon.
  unordered-iter Iteration over std::unordered_{map,set,...}. Iteration
                 order is implementation-defined, so anything it feeds
                 (routing tables, event schedules, output rows) loses
                 determinism. Keyed lookup is fine; iterate a sorted
                 container instead.
  raw-thread     std::thread / std::jthread outside common/thread_pool.
                 Ad-hoc threads bypass the pool's determinism contract
                 (indexed work, seed-per-index), its exception
                 propagation, and its drain-on-destruction guarantee;
                 route parallel work through ThreadPool /
                 core::run_indexed instead.
  hard-exit      exit()/abort()/bare throw outside common/check.cpp and
                 common/status.cpp. A grid point that exits or throws past
                 the containment boundary kills a whole sweep; report
                 expected failures as Status (common/status.hpp), raise
                 internal-invariant failures through FLEXNETS_CHECK, and
                 let throw_status carry a Status across a boundary that
                 cannot return one.
  priority-queue std::priority_queue outside sim/event_queue and
                 flow/solver_internals. The hot paths use purpose-built
                 heaps (EventQueue: vector + push_heap with reserve() and
                 move-out pop; DaryDijkstra: preallocated 4-ary heap);
                 a raw priority_queue in engine code usually means a new
                 hot loop bypassing both. Use those abstractions, or
                 suppress with a measurement-backed justification.

Suppression: append  // flexnets-lint: allow(<rule>)  to the offending
line. Use sparingly and say why.

Usage:
  lint_flexnets.py [paths...]          lint .cpp/.hpp files (default: src/)
  lint_flexnets.py --self-test         run against the seeded negative
                                       fixture and verify every expected
                                       finding fires (and nothing else)

Exit status: 0 clean, 1 findings (or failed self-test), 2 usage error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_PATHS = [os.path.join(REPO_ROOT, "src")]
FIXTURE = os.path.join(REPO_ROOT, "tests", "lint_fixtures", "negative.cpp")

SOURCE_EXTENSIONS = (".cpp", ".hpp", ".cc", ".h")

ALLOW_RE = re.compile(r"flexnets-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")
EXPECT_RE = re.compile(r"EXPECT-LINT:\s*([a-z-]+(?:\s*,\s*[a-z-]+)*)")


@dataclass(frozen=True)
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str


# ---------------------------------------------------------------------------
# Comment / string stripping (keeps line structure so line numbers survive).

def strip_comments_and_strings(text: str) -> str:
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i = min(i + 2, n)
        elif c == '"' or c == "'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


# ---------------------------------------------------------------------------
# Rules. Each is (rule id, [regexes], message). Matching happens on
# comment/string-stripped lines.

RAW_RNG = [
    re.compile(r"\bstd::s?rand\b"),
    re.compile(r"(?<![\w:.])rand\s*\("),
    re.compile(r"(?<![\w:.])srand\s*\("),
    re.compile(r"\brandom_device\b"),
    re.compile(r"\bstd::random_shuffle\b"),
    re.compile(r"\bdrand48\b|\blrand48\b|\bmrand48\b"),
]

WALL_CLOCK = [
    re.compile(r"std::chrono::(system_clock|steady_clock|high_resolution_clock)"),
    re.compile(r"\bgettimeofday\s*\("),
    re.compile(r"\bclock_gettime\s*\("),
    re.compile(r"(?<![\w:.])clock\s*\(\s*\)"),
    re.compile(r"(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
    re.compile(r"\blocaltime\s*\(|\bgmtime\s*\("),
]

_TIME_CALL = r"(?:to_seconds|to_millis|to_micros)\s*\([^()]*\)"
_TIME_NAME = r"(?:[A-Za-z_]\w*_sec(?:s|onds?)?|now_sec|done_at|next_event)"
TIME_FLOAT_EQ = [
    re.compile(_TIME_CALL + r"\s*[=!]="),
    re.compile(r"[=!]=\s*" + _TIME_CALL),
    re.compile(r"\b" + _TIME_NAME + r"\b\s*(?:==|!=)"),
    re.compile(r"(?:==|!=)\s*\b" + _TIME_NAME + r"\b"),
]

UNORDERED_RANGE_FOR = re.compile(r"for\s*\([^;)]*:\s*[^);]*unordered")
UNORDERED_DECL = re.compile(r"\bstd::unordered_\w+\s*<[^;{}]*?>\s+(\w+)\s*[;({=]")

# std::thread member calls like std::thread::hardware_concurrency() are
# fine anywhere; constructing/declaring threads is what the rule bans.
RAW_THREAD = [
    re.compile(r"\bstd::j?thread\b(?!\s*::)"),
]

# The one sanctioned home for raw threads (see src/common/thread_pool.hpp).
RAW_THREAD_EXEMPT_SUFFIXES = (
    os.path.join("common", "thread_pool.hpp"),
    os.path.join("common", "thread_pool.cpp"),
)

PRIORITY_QUEUE = [
    re.compile(r"\bstd::priority_queue\b"),
]

# exit()/abort()/bare throw end the process (or escape containment) from
# arbitrary engine code. `rethrow_exception` is fine: \bthrow\b cannot
# match inside it, and the pool uses it to propagate a point's failure to
# the thread that owns the grid.
HARD_EXIT = [
    re.compile(r"(?<![\w.])(?:std::|::)?(?:_?exit|quick_exit)\s*\("),
    re.compile(r"(?<![\w.])(?:std::|::)?abort\s*\("),
    re.compile(r"\bthrow\b"),
]

# The sanctioned homes: FLEXNETS_CHECK's kThrow/kAbort surface and the
# StatusError carrier raised by throw_status.
HARD_EXIT_EXEMPT_SUFFIXES = (
    os.path.join("common", "check.cpp"),
    os.path.join("common", "status.cpp"),
)

# The sanctioned heap homes: the event queue and the GK solver scratch.
PRIORITY_QUEUE_EXEMPT_SUFFIXES = (
    os.path.join("sim", "event_queue.hpp"),
    os.path.join("sim", "event_queue.cpp"),
    os.path.join("flow", "solver_internals.hpp"),
    os.path.join("flow", "solver_internals.cpp"),
)

MESSAGES = {
    "raw-rng": "raw libc/std randomness; use the seeded splittable Rng "
               "(src/common/rng.hpp) so runs replay from one seed",
    "wall-clock": "wall-clock read inside simulation code; use simulated "
                  "TimeNs (src/common/units.hpp)",
    "time-float-eq": "exact ==/!= on floating-point simulated time; compare "
                     "integer TimeNs or use an epsilon",
    "unordered-iter": "iteration over an unordered container feeds "
                      "implementation-defined order into deterministic "
                      "output; iterate a sorted container instead",
    "raw-thread": "raw std::thread outside common/thread_pool; route "
                  "parallel work through ThreadPool / core::run_indexed "
                  "(exception propagation, drain-on-destruction, "
                  "deterministic indexed scheduling)",
    "priority-queue": "std::priority_queue outside sim/event_queue and "
                      "flow/solver_internals; use EventQueue or "
                      "DaryDijkstra (preallocated, reservable, move-out "
                      "pop) instead of growing a new ad-hoc hot loop",
    "hard-exit": "exit/abort/throw outside common/check.cpp and "
                 "common/status.cpp kills or escapes a contained sweep; "
                 "return a Status (common/status.hpp), use FLEXNETS_CHECK "
                 "for invariants, or throw_status at a boundary that "
                 "cannot return one",
}


def lint_file(path: str) -> list[Finding]:
    with open(path, encoding="utf-8", errors="replace") as f:
        original = f.read()
    stripped = strip_comments_and_strings(original)
    original_lines = original.splitlines()
    stripped_lines = stripped.splitlines()

    # Names of locally declared unordered containers (whole-file scan).
    unordered_names = set()
    for line in stripped_lines:
        for m in UNORDERED_DECL.finditer(line):
            unordered_names.add(m.group(1))
    unordered_use = (
        re.compile(
            r"(?:for\s*\([^;)]*:\s*(?:" + "|".join(map(re.escape, sorted(unordered_names))) + r")\b"
            r"|\b(?:" + "|".join(map(re.escape, sorted(unordered_names))) + r")\s*\.\s*begin\s*\(\))"
        )
        if unordered_names
        else None
    )

    findings: list[Finding] = []
    for lineno, line in enumerate(stripped_lines, start=1):
        orig = original_lines[lineno - 1] if lineno <= len(original_lines) else ""
        allowed = set()
        m = ALLOW_RE.search(orig)
        if m:
            allowed = {r.strip() for r in m.group(1).split(",")}

        def emit(rule: str) -> None:
            if rule not in allowed:
                findings.append(Finding(path, lineno, rule, MESSAGES[rule]))

        if any(r.search(line) for r in RAW_RNG):
            emit("raw-rng")
        if not path.endswith(RAW_THREAD_EXEMPT_SUFFIXES) and any(
            r.search(line) for r in RAW_THREAD
        ):
            emit("raw-thread")
        if not path.endswith(PRIORITY_QUEUE_EXEMPT_SUFFIXES) and any(
            r.search(line) for r in PRIORITY_QUEUE
        ):
            emit("priority-queue")
        if not path.endswith(HARD_EXIT_EXEMPT_SUFFIXES) and any(
            r.search(line) for r in HARD_EXIT
        ):
            emit("hard-exit")
        if any(r.search(line) for r in WALL_CLOCK):
            emit("wall-clock")
        if any(r.search(line) for r in TIME_FLOAT_EQ):
            emit("time-float-eq")
        if UNORDERED_RANGE_FOR.search(line) or (
            unordered_use and unordered_use.search(line)
        ):
            emit("unordered-iter")
    return findings


def collect_sources(paths: list[str]) -> list[str]:
    files = []
    for p in paths:
        if os.path.isfile(p):
            files.append(p)
        elif os.path.isdir(p):
            for root, _dirs, names in os.walk(p):
                for name in sorted(names):
                    if name.endswith(SOURCE_EXTENSIONS):
                        files.append(os.path.join(root, name))
        else:
            print(f"lint_flexnets: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return sorted(files)


def self_test() -> int:
    """The negative fixture must trip exactly its annotated findings."""
    if not os.path.isfile(FIXTURE):
        print(f"lint_flexnets: missing fixture {FIXTURE}", file=sys.stderr)
        return 1
    expected = set()
    with open(FIXTURE, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            m = EXPECT_RE.search(line)
            if m:
                for rule in m.group(1).split(","):
                    expected.add((lineno, rule.strip()))
    got = {(f.line, f.rule) for f in lint_file(FIXTURE)}
    ok = True
    for miss in sorted(expected - got):
        print(f"self-test: expected finding did not fire: "
              f"{FIXTURE}:{miss[0]} [{miss[1]}]")
        ok = False
    for extra in sorted(got - expected):
        print(f"self-test: unexpected finding: "
              f"{FIXTURE}:{extra[0]} [{extra[1]}]")
        ok = False
    if ok:
        print(f"self-test OK: {len(expected)} expected findings fired on "
              f"{os.path.relpath(FIXTURE, REPO_ROOT)}")
    return 0 if ok else 1


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*", help="files or directories (default: src/)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the rules against the seeded negative fixture")
    args = ap.parse_args()

    if args.self_test:
        return self_test()

    paths = args.paths or DEFAULT_PATHS
    findings: list[Finding] = []
    for path in collect_sources(paths):
        findings.extend(lint_file(path))
    for f in findings:
        rel = os.path.relpath(f.path, REPO_ROOT)
        print(f"{rel}:{f.line}: [{f.rule}] {f.message}")
    if findings:
        print(f"lint_flexnets: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
