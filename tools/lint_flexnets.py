#!/usr/bin/env python3
"""Compatibility wrapper for the flexnets static analyzer.

The regex lint that used to live here has been superseded by
flexnets_analyze (tools/analyze/), a real C++ lexer with per-TU and
cross-TU passes: the seven ported determinism/containment rules
(raw-rng, wall-clock, time-float-eq, unordered-iter, raw-thread,
hard-exit, priority-queue), include-graph layering against
tools/layering.json, Status/StatusOr discipline, and lock-annotation
verification. Suppressions are unchanged (`// flexnets-lint:
allow(rule)`), and an allow() that no longer suppresses anything is
itself reported.

This script only locates the built binary and execs it, so existing
recipes (`lint_flexnets.py src/`, `lint_flexnets.py --self-test`) keep
working. Exit codes are the analyzer's: 0 clean, 1 findings, 2 usage/IO.

Binary resolution order:
  1. --bin PATH            (what ctest passes)
  2. $FLEXNETS_ANALYZE_BIN
  3. <repo>/build*/tools/analyze/flexnets_analyze (newest build first)
"""

import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def find_binary() -> str | None:
    env = os.environ.get("FLEXNETS_ANALYZE_BIN")
    if env and os.path.isfile(env) and os.access(env, os.X_OK):
        return env
    candidates = []
    for entry in sorted(os.listdir(REPO_ROOT)):
        if not entry.startswith("build"):
            continue
        path = os.path.join(REPO_ROOT, entry, "tools", "analyze",
                            "flexnets_analyze")
        if os.path.isfile(path) and os.access(path, os.X_OK):
            candidates.append(path)
    if not candidates:
        return None
    candidates.sort(key=os.path.getmtime, reverse=True)
    return candidates[0]


def main() -> int:
    args = sys.argv[1:]
    binary = None
    if "--bin" in args:
        i = args.index("--bin")
        if i + 1 >= len(args):
            print("lint_flexnets: --bin needs a path", file=sys.stderr)
            return 2
        binary = args[i + 1]
        del args[i:i + 2]
    if binary is None:
        binary = find_binary()
    if binary is None or not os.path.isfile(binary):
        print(
            "lint_flexnets: flexnets_analyze binary not found; build it "
            "(cmake --build build --target flexnets_analyze) or pass "
            "--bin / set FLEXNETS_ANALYZE_BIN",
            file=sys.stderr,
        )
        return 2
    cmd = [binary, "--repo-root", REPO_ROOT] + args
    return subprocess.call(cmd)


if __name__ == "__main__":
    sys.exit(main())
