// flexnets_cli: command-line access to the library's three layers --
// topology generation/inspection, fluid-flow throughput evaluation, and
// packet-level simulation.
//
//   flexnets_cli topo  --topo=xpander --degree=5 --lift=9 --servers=3 --stats
//   flexnets_cli fluid --topo=jellyfish --switches=50 --degree=7 --servers=6
//   flexnets_cli sim   --topo=fattree --k=8 --workload=skew --routing=hyb
//
// Run with no arguments for the full flag reference.
#include <cstdio>
#include <string>

#include "cli_commands.hpp"

int main(int argc, char** argv) {
  using namespace flexnets::cli;
  if (argc < 2) {
    print_usage();
    return 2;
  }
  const std::string cmd = argv[1];
  std::string error;
  const auto args = Args::parse(argc - 2, argv + 2, &error);
  if (!args) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }

  int rc;
  if (cmd == "topo") {
    rc = cmd_topo(*args);
  } else if (cmd == "fluid") {
    rc = cmd_fluid(*args);
  } else if (cmd == "sim") {
    rc = cmd_sim(*args);
  } else if (cmd == "dyn") {
    rc = cmd_dyn(*args);
  } else {
    std::fprintf(stderr, "error: unknown command '%s'\n\n", cmd.c_str());
    print_usage();
    return 2;
  }

  if (rc == 0) {
    for (const auto& flag : args->unused()) {
      std::fprintf(stderr, "warning: unrecognized flag --%s (ignored)\n",
                   flag.c_str());
    }
  }
  return rc;
}
