// Minimal flag parser for the flexnets CLI: --key=value / --key value /
// bare --flag, with typed accessors and unknown-flag detection.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace flexnets::cli {

class Args {
 public:
  // argv after the subcommand. Returns nullopt on malformed input.
  static std::optional<Args> parse(int argc, const char* const* argv,
                                   std::string* error);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& def) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;

  // Flags consulted via the getters; anything else is a user typo.
  [[nodiscard]] std::vector<std::string> unused() const;

  // Every parsed flag as (key, value) pairs — value empty for bare
  // flags. Lets the sweep coordinator rebuild a worker's argv from its
  // own arguments. Does not mark anything used.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> items()
      const;

 private:
  std::map<std::string, std::string> kv_;
  mutable std::set<std::string> used_;
};

}  // namespace flexnets::cli
