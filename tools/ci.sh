#!/usr/bin/env bash
# One offline correctness gate for flexnets:
#   1. tier-1: default configure, build, full ctest
#   2. fault:  the live fault-injection suite (`ctest -L fault`) and the
#      bench_failures_live smoke run (dip + reconvergence + zero
#      post-repair blackholes acceptance checks)
#   2b. gray:  the gray-failure differential suite (`ctest -L gray`) and
#      the bench_gray --digest-check gate — same-seed event-digest
#      bit-equality between the serial engine and PDES at --threads 2
#      and 4 on a jellyfish pure-gray plan and a fat-tree
#      binary+gray cocktail
#   3. lint:   flexnets_analyze (via the lint_flexnets.py wrapper)
#      fixture self-test + src/ scan — the cross-TU static analyzer
#      enforcing the ported determinism rules, include-graph layering
#      (tools/layering.json), Status discipline, and lock annotations.
#      A violation is proven fatal by seeding a transient layering
#      probe and requiring the analyzer to reject it.
#   4. resilience gate: bench_fig2 --journal is SIGKILLed mid-grid and
#      resumed with --resume; the resumed "digest fig2:" line must be
#      bit-identical to an uninterrupted run's
#   4b. chaos gate: the sharded sweep service (src/sweep). bench_fig2
#      --workers 4 with FLEXNETS_CRASH_AT worker crashes must still
#      reproduce the serial digest; then the COORDINATOR is SIGKILLed
#      mid-grid (workers must die with it via PDEATHSIG — no orphans)
#      and --resume over the merged journal must again match bit for bit
#   5. asan-ubsan preset: rebuild and rerun the full suite under
#      AddressSanitizer + UndefinedBehaviorSanitizer (-Werror on), plus
#      an explicit pass over the corrupt-input corpus (topo files and
#      wire-protocol .frames fuzz corpus)
#   6. tsan preset: build the parallel determinism suites under
#      ThreadSanitizer and run `ctest -L parallel` (thread pool contracts
#      + parallel-vs-serial sweep bit-equality), `ctest -L pdes`
#      (serial-vs-parallel packet-engine digest equality across threads,
#      topologies, and fault plans), and `ctest -L gray` (the same
#      equality on gray plans, where per-link loss counters and the
#      detection machinery are in play); any report is fatal
#   7. audited tier-1 rerun: FLEXNETS_AUDIT=1 enables the runtime
#      invariant audits (event ordering, LP feasibility/conservation,
#      routing-table sanity, repaired-routing liveness, determinism
#      digests)
#   8. perf smoke: bench_micro_flow/bench_micro_sim/bench_sweep --json
#      emit BENCH_MCF.json / BENCH_SIM.json / BENCH_SWEEP.json, bench_gray
#      --json appends the resilience-showdown grid into BENCH_SIM.json,
#      and the schema is validated (required keys present, lambda finite,
#      gray cases carry a zero post_repair_blackholes).
#      Timings are recorded, not gated — absolute ns/op depends on the
#      machine; the committed JSON trajectory is what reviewers eyeball
#      for regressions.
#
# clang-tidy is run only if installed; its absence is not a failure
# (the container image ships gcc only — .clang-tidy is still the config
# of record for environments that have it).
#
# Usage: tools/ci.sh [--fast]
#   --fast   skip the asan-ubsan rebuild (the tsan parallel gate and the
#            other steps still run)

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

JOBS="$(nproc 2>/dev/null || echo 4)"

step() { printf '\n==== %s ====\n' "$*"; }

step "tier-1: configure + build"
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"

step "tier-1: ctest"
ctest --test-dir build --output-on-failure -j "$JOBS"

step "fault suite: ctest -L fault"
ctest --test-dir build -L fault --output-on-failure -j "$JOBS"

step "live-failure smoke: bench_failures_live"
./build/bench/bench_failures_live

step "gray suite: ctest -L gray"
ctest --test-dir build -L gray --output-on-failure -j "$JOBS"

# Gray-determinism gate: the PDES engine must reproduce the serial event
# digest bit for bit on plans that exercise per-packet loss, degraded
# service rates, flapping, and detection-triggered repairs. bench_gray
# --digest-check runs a jellyfish pure-gray plan and a fat-tree
# binary+gray cocktail serially, then at --threads 2 and 4, and exits
# nonzero on any digest mismatch (or if no gray loss was exercised).
step "gray-determinism gate: bench_gray --digest-check"
./build/bench/bench_gray --digest-check

step "lint: rule self-test + src/ scan"
ANALYZE_BIN="build/tools/analyze/flexnets_analyze"
python3 tools/lint_flexnets.py --bin "$ANALYZE_BIN" --self-test
python3 tools/lint_flexnets.py --bin "$ANALYZE_BIN"

# The layering contract must have teeth: seed a transient upward include
# (graph/ reaching into core/) and require the analyzer to reject it.
step "analyze: seeded layering violation must be fatal"
PROBE="src/graph/__layering_probe.cpp"
trap 'rm -f "$REPO_ROOT/$PROBE"' EXIT
printf '#include "core/journal.hpp"\n' > "$PROBE"
if "$ANALYZE_BIN" --repo-root "$REPO_ROOT" src/ >/dev/null 2>&1; then
  rm -f "$PROBE"
  echo "analyze gate: seeded layering violation was NOT rejected"
  exit 1
fi
rm -f "$PROBE"
"$ANALYZE_BIN" --repo-root "$REPO_ROOT" src/ >/dev/null
echo "seeded violation rejected; clean tree passes"

# Nested modules must be constrained too: sim/pdes sits below core, so a
# pdes file reaching up into core/ must be fatal.
step "analyze: seeded sim/pdes layering violation must be fatal"
PDES_PROBE="src/sim/pdes/__layering_probe.cpp"
trap 'rm -f "$REPO_ROOT/$PDES_PROBE"' EXIT
printf '#include "core/journal.hpp"\n' > "$PDES_PROBE"
if "$ANALYZE_BIN" --repo-root "$REPO_ROOT" src/ >/dev/null 2>&1; then
  rm -f "$PDES_PROBE"
  echo "analyze gate: seeded sim/pdes layering violation was NOT rejected"
  exit 1
fi
rm -f "$PDES_PROBE"
"$ANALYZE_BIN" --repo-root "$REPO_ROOT" src/ >/dev/null
echo "seeded sim/pdes violation rejected; clean tree passes"

# topo/csr sits BELOW graph (the flat hot path must never reach back into
# the multigraph): a csr file including graph/ must be fatal.
step "analyze: seeded topo/csr layering violation must be fatal"
CSR_PROBE="src/topo/csr/__layering_probe.cpp"
trap 'rm -f "$REPO_ROOT/$CSR_PROBE"' EXIT
printf '#include "graph/graph.hpp"\n' > "$CSR_PROBE"
if "$ANALYZE_BIN" --repo-root "$REPO_ROOT" src/ >/dev/null 2>&1; then
  rm -f "$CSR_PROBE"
  echo "analyze gate: seeded topo/csr layering violation was NOT rejected"
  exit 1
fi
rm -f "$CSR_PROBE"
"$ANALYZE_BIN" --repo-root "$REPO_ROOT" src/ >/dev/null
echo "seeded topo/csr violation rejected; clean tree passes"

# Same teeth for the process-api rule: a raw fork() anywhere outside
# src/sweep/process_supervisor.cpp must be fatal.
step "analyze: seeded process-api violation must be fatal"
PROC_PROBE="src/graph/__process_probe.cpp"
trap 'rm -f "$REPO_ROOT/$PROC_PROBE"' EXIT
printf '#include <unistd.h>\nint probe_pid() { return fork(); }\n' > "$PROC_PROBE"
if "$ANALYZE_BIN" --repo-root "$REPO_ROOT" src/ >/dev/null 2>&1; then
  rm -f "$PROC_PROBE"
  echo "analyze gate: seeded process-api violation was NOT rejected"
  exit 1
fi
rm -f "$PROC_PROBE"
"$ANALYZE_BIN" --repo-root "$REPO_ROOT" src/ >/dev/null
echo "seeded fork() rejected; clean tree passes"

# Optional: under clang the FLEXNETS_* lock annotations expand to real
# thread-safety attributes; verify the annotated TUs under
# -Wthread-safety -Werror. clang's absence is not a failure (the
# container ships gcc only).
if command -v clang++ >/dev/null 2>&1; then
  step "clang -Wthread-safety on annotated TUs"
  TS_FLAGS=(-std=c++20 -fsyntax-only -Isrc -Wthread-safety -Werror)
  # Under libstdc++, std::mutex is not attribute-annotated as a
  # capability; silence only the attribute-noise warning in that case.
  if ! clang++ "${TS_FLAGS[@]}" -x c++ - <<<'#include <mutex>
struct S { std::mutex m; int v __attribute__((guarded_by(m))); };' \
      >/dev/null 2>&1; then
    TS_FLAGS+=(-Wno-thread-safety-attributes)
  fi
  clang++ "${TS_FLAGS[@]}" src/common/thread_pool.cpp src/core/journal.cpp
  echo "thread-safety analysis clean on annotated TUs"
else
  step "clang not installed; skipping -Wthread-safety (annotations are no-ops under gcc)"
fi

# Resilience gate: a journaled sweep SIGKILLed mid-grid, then resumed,
# must reproduce the uninterrupted run's digest bit for bit. The digest
# line is "digest fig2: <16 hex> (...)"; --point-sleep-ms widens each
# point so the kill reliably lands inside the grid.
step "resilience gate: kill bench_fig2 mid-grid, resume, compare digests"
RES_DIR="$(mktemp -d)"
trap 'rm -rf "$RES_DIR"' EXIT
./build/bench/bench_fig2 --threads 2 > "$RES_DIR/full.out"
REF_DIGEST="$(grep -oE 'digest fig2: [0-9a-f]{16}' "$RES_DIR/full.out" | awk '{print $3}')"
[[ -n "$REF_DIGEST" ]] || { echo "resilience gate: no digest in uninterrupted run"; exit 1; }
./build/bench/bench_fig2 --threads 2 --journal "$RES_DIR/fig2.jsonl" \
  --point-sleep-ms 250 > "$RES_DIR/killed.out" 2>&1 &
KILL_PID=$!
sleep 2
kill -9 "$KILL_PID" 2>/dev/null || true
wait "$KILL_PID" 2>/dev/null || true
JOURNALED="$(wc -l < "$RES_DIR/fig2.jsonl")"
# The kill must land mid-grid: some points journaled, some still missing
# (the fig2 grid has 28 points).
if [[ "$JOURNALED" -lt 1 || "$JOURNALED" -ge 28 ]]; then
  echo "resilience gate: SIGKILL missed the grid ($JOURNALED/28 points journaled)"
  exit 1
fi
echo "killed mid-grid with $JOURNALED/28 points journaled; resuming"
./build/bench/bench_fig2 --threads 2 --resume "$RES_DIR/fig2.jsonl" > "$RES_DIR/resumed.out"
RES_DIGEST="$(grep -oE 'digest fig2: [0-9a-f]{16}' "$RES_DIR/resumed.out" | awk '{print $3}')"
if [[ "$REF_DIGEST" != "$RES_DIGEST" ]]; then
  echo "resilience gate: resumed digest $RES_DIGEST != uninterrupted $REF_DIGEST"
  exit 1
fi
echo "resume digest matches uninterrupted run: $REF_DIGEST"

# Chaos gate: the sharded orchestrator under fire. All three runs must
# reproduce the uninterrupted serial digest captured above.
step "chaos gate: sharded sweep with worker crashes + coordinator SIGKILL"
# (a) clean sharded run: digest identical for any worker count.
./build/bench/bench_fig2 --threads 2 --workers 4 > "$RES_DIR/sharded.out"
SHARDED_DIGEST="$(grep -oE 'digest fig2: [0-9a-f]{16}' "$RES_DIR/sharded.out" | awk '{print $3}')"
if [[ "$REF_DIGEST" != "$SHARDED_DIGEST" ]]; then
  echo "chaos gate: sharded digest $SHARDED_DIGEST != serial $REF_DIGEST"
  exit 1
fi
echo "workers=4 digest matches serial: $SHARDED_DIGEST"
# (b) crash-injected workers: points 3 and 7 SIGKILL their worker on the
# first attempt; the retry on a fresh worker must restore the digest.
FLEXNETS_CRASH_AT=3,7 ./build/bench/bench_fig2 --threads 2 --workers 4 \
  > "$RES_DIR/crashed.out"
CRASH_DIGEST="$(grep -oE 'digest fig2: [0-9a-f]{16}' "$RES_DIR/crashed.out" | awk '{print $3}')"
if [[ "$REF_DIGEST" != "$CRASH_DIGEST" ]]; then
  echo "chaos gate: crash-injected digest $CRASH_DIGEST != serial $REF_DIGEST"
  exit 1
fi
grep -q 'worker deaths' "$RES_DIR/crashed.out" || {
  echo "chaos gate: sharded stats line missing from crash run"; exit 1; }
echo "crash-injected workers recovered; digest matches: $CRASH_DIGEST"
# (c) coordinator SIGKILL mid-grid: workers must die with it (PDEATHSIG,
# no orphans) and --resume over the merged journal must complete the grid.
./build/bench/bench_fig2 --threads 2 --workers 4 --journal "$RES_DIR/chaos.jsonl" \
  --point-sleep-ms 400 > "$RES_DIR/chaos_killed.out" 2>&1 &
CHAOS_PID=$!
sleep 2
kill -9 "$CHAOS_PID" 2>/dev/null || true
wait "$CHAOS_PID" 2>/dev/null || true
sleep 1
if pgrep -f 'bench_fig2.*sweep-worker' >/dev/null 2>&1; then
  echo "chaos gate: orphaned workers survived the coordinator SIGKILL"
  pkill -9 -f 'bench_fig2.*sweep-worker' || true
  exit 1
fi
CHAOS_JOURNALED="$(wc -l < "$RES_DIR/chaos.jsonl")"
if [[ "$CHAOS_JOURNALED" -lt 1 || "$CHAOS_JOURNALED" -ge 28 ]]; then
  echo "chaos gate: SIGKILL missed the grid ($CHAOS_JOURNALED/28 points journaled)"
  exit 1
fi
echo "coordinator killed with $CHAOS_JOURNALED/28 points journaled; no orphans; resuming"
./build/bench/bench_fig2 --threads 2 --workers 4 --resume "$RES_DIR/chaos.jsonl" \
  > "$RES_DIR/chaos_resumed.out"
CHAOS_DIGEST="$(grep -oE 'digest fig2: [0-9a-f]{16}' "$RES_DIR/chaos_resumed.out" | awk '{print $3}')"
if [[ "$REF_DIGEST" != "$CHAOS_DIGEST" ]]; then
  echo "chaos gate: resumed sharded digest $CHAOS_DIGEST != serial $REF_DIGEST"
  exit 1
fi
echo "sharded resume digest matches uninterrupted serial run: $CHAOS_DIGEST"

if command -v clang-tidy >/dev/null 2>&1; then
  step "clang-tidy (config: .clang-tidy)"
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  find src -name '*.cpp' -print0 |
    xargs -0 -n 8 -P "$JOBS" clang-tidy -p build --quiet
else
  step "clang-tidy not installed; skipping (config-only)"
fi

if [[ "$FAST" -eq 0 ]]; then
  step "asan-ubsan preset: build + full suite"
  cmake --preset asan-ubsan >/dev/null
  cmake --build --preset asan-ubsan -j "$JOBS"
  ctest --preset asan-ubsan -j "$JOBS" --output-on-failure

  # Explicit pass over the corrupt-input corpus under the sanitizers: every
  # malformed file (topo inputs AND wire-protocol .frames fuzz corpus)
  # must yield a structured kInvalidInput, never a trap.
  step "asan-ubsan: corrupt-input corpus (topo + wire frames)"
  ctest --preset asan-ubsan -R 'CorruptInputs|FramesCorpus' --output-on-failure
fi

# Required gate: the parallel determinism suites must be race-free. Only
# the suites' own targets are built under TSan; `-L parallel` / `-L pdes`
# then skip every other (unbuilt) test registration.
step "tsan preset: parallel determinism suites (sweep + packet PDES + gray)"
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j "$JOBS" --target flexnets_parallel_tests \
  --target flexnets_pdes_tests --target flexnets_gray_tests
ctest --test-dir build-tsan -L parallel --output-on-failure -j "$JOBS"
ctest --test-dir build-tsan -L pdes --output-on-failure -j "$JOBS"
ctest --test-dir build-tsan -L gray --output-on-failure -j "$JOBS"

step "audited rerun: FLEXNETS_AUDIT=1 ctest"
FLEXNETS_AUDIT=1 ctest --test-dir build --output-on-failure -j "$JOBS"

step "perf smoke: micro benches --json (schema check, timings not gated)"
./build/bench/bench_micro_flow --json BENCH_MCF.json
# bench_hyperscale appends its hs_* cases into the same BENCH_MCF.json.
# Gating here: the GK bit-identity cross-check (exit 1 on any lambda bit
# mismatch) and the 2 GB peak-RSS budget for the 100k-switch bracket.
# Timings stay non-gated like every other perf number.
./build/bench/bench_hyperscale --json BENCH_MCF.json --rss-budget-mb 2048
./build/bench/bench_micro_sim --json BENCH_SIM.json
# bench_gray appends the gray_* resilience-showdown cases into the same
# BENCH_SIM.json; its own acceptance check (zero post-repair blackholes
# on every grid cell) makes it exit nonzero on a broken repair.
./build/bench/bench_gray --json BENCH_SIM.json
./build/bench/bench_sweep --json BENCH_SWEEP.json
python3 - <<'PY'
import json
import math
import sys

def require(cond, what):
    if not cond:
        sys.exit(f"perf smoke: {what}")

for path, needs_lambda in (("BENCH_MCF.json", True), ("BENCH_SIM.json", False),
                           ("BENCH_SWEEP.json", False)):
    with open(path) as f:
        doc = json.load(f)
    require(doc.get("schema_version") == 1, f"{path}: bad schema_version")
    require(isinstance(doc.get("bench"), str), f"{path}: missing bench name")
    cases = doc.get("cases")
    require(isinstance(cases, list) and cases, f"{path}: no cases")
    for case in cases:
        require(isinstance(case.get("name"), str), f"{path}: case without name")
        ns = case.get("ns_per_op")
        require(isinstance(ns, (int, float)) and ns > 0 and math.isfinite(ns),
                f"{path}: {case.get('name')}: bad ns_per_op")
    if needs_lambda:
        lambdas = [case["lambda"] for case in cases if "lambda" in case]
        require(lambdas, f"{path}: no case reports lambda")
        require(all(math.isfinite(l) and l > 0 for l in lambdas),
                f"{path}: non-finite lambda")
    print(f"perf smoke: {path} schema OK ({len(cases)} case(s))")

# Gray showdown cases merged into BENCH_SIM.json: every grid cell must
# report a finite p99 FCT inflation and a zero post-repair blackhole
# count (the graceful-degradation acceptance bar), and all three
# cost-equalized topologies must be present.
with open("BENCH_SIM.json") as f:
    doc = json.load(f)
gray = [c for c in doc["cases"] if c["name"].startswith("gray_")]
require(gray, "BENCH_SIM.json: no gray_* cases (bench_gray --json missing?)")
for case in gray:
    p99 = case.get("fct_infl_p99")
    require(isinstance(p99, (int, float)) and math.isfinite(p99) and p99 > 0,
            f"BENCH_SIM.json: {case['name']}: bad fct_infl_p99")
    require(case.get("post_repair_blackholes") == 0,
            f"BENCH_SIM.json: {case['name']}: post-repair blackholes remain")
for topo in ("fat_tree", "xpander", "jellyfish"):
    require(any(c["name"].startswith(f"gray_{topo}_") for c in gray),
            f"BENCH_SIM.json: no gray cases for {topo}")
print(f"perf smoke: gray showdown cases OK ({len(gray)} cell(s), "
      "zero post-repair blackholes)")

# Hyperscale cases merged into BENCH_MCF.json: the root peak_rss_kb must be
# recorded, the 100k bracket must be present and well-ordered
# (0 <= lower <= upper <= 1), and the bit-identity checks must have passed.
with open("BENCH_MCF.json") as f:
    doc = json.load(f)
rss = doc.get("peak_rss_kb")
require(isinstance(rss, (int, float)) and rss > 0 and math.isfinite(rss),
        "BENCH_MCF.json: missing/invalid root peak_rss_kb")
by_name = {case["name"]: case for case in doc["cases"]}
require("hs_bracket_jf100k" in by_name,
        "BENCH_MCF.json: no hs_bracket_jf100k case")
br = by_name["hs_bracket_jf100k"]
require(0.0 <= br["lower"] <= br["upper"] <= 1.0 + 1e-9,
        "BENCH_MCF.json: hs_bracket_jf100k bracket is not ordered")
require(br.get("peak_rss_kb", 0) > 0,
        "BENCH_MCF.json: hs_bracket_jf100k lacks peak_rss_kb")
for name in ("hs_gk_bitcheck_jf32_a2a", "hs_gk_bitcheck_jf64_perm"):
    require(by_name.get(name, {}).get("bit_identical") == 1,
            f"BENCH_MCF.json: {name} not bit-identical")
require(by_name.get("hs_cap_guard_jf100k", {}).get("cap_refused") == 1,
        "BENCH_MCF.json: commodity cap did not refuse at 100k")
print("perf smoke: hyperscale cases OK (bracket ordered, bit-identity, "
      "cap guard)")
PY

step "ci.sh: all gates passed"
