#include "cli_args.hpp"

#include <cstdlib>

namespace flexnets::cli {

std::optional<Args> Args::parse(int argc, const char* const* argv,
                                std::string* error) {
  Args out;
  for (int i = 0; i < argc; ++i) {
    std::string tok = argv[i];
    if (tok.rfind("--", 0) != 0) {
      if (error != nullptr) *error = "expected --flag, got '" + tok + "'";
      return std::nullopt;
    }
    tok = tok.substr(2);
    const auto eq = tok.find('=');
    if (eq != std::string::npos) {
      out.kv_[tok.substr(0, eq)] = tok.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      out.kv_[tok] = argv[++i];
    } else {
      out.kv_[tok] = "";  // bare flag
    }
  }
  return out;
}

bool Args::has(const std::string& key) const {
  used_.insert(key);
  return kv_.contains(key);
}

std::string Args::get(const std::string& key, const std::string& def) const {
  used_.insert(key);
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

std::int64_t Args::get_int(const std::string& key, std::int64_t def) const {
  const auto s = get(key, "");
  return s.empty() ? def : std::strtoll(s.c_str(), nullptr, 10);
}

double Args::get_double(const std::string& key, double def) const {
  const auto s = get(key, "");
  return s.empty() ? def : std::strtod(s.c_str(), nullptr);
}

std::vector<std::pair<std::string, std::string>> Args::items() const {
  return {kv_.begin(), kv_.end()};
}

std::vector<std::string> Args::unused() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : kv_) {
    if (!used_.contains(k)) out.push_back(k);
  }
  return out;
}

}  // namespace flexnets::cli
