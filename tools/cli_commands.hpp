// The flexnets CLI subcommands. Each returns a process exit code.
#pragma once

#include <optional>
#include <string>

#include "cli_args.hpp"
#include "topo/topology.hpp"

namespace flexnets::cli {

// Builds a topology from --topo=<kind> plus kind-specific flags, or loads
// one from --load=<file>. Shared by all subcommands. Prints an error and
// returns nullopt on bad flags.
std::optional<topo::Topology> build_topology(const Args& args);

// flexnets_cli topo  --topo=... [--save=f] [--dot=f] [--stats]
int cmd_topo(const Args& args);
// flexnets_cli fluid --topo=... [--fractions=a,b,c] [--tm=...] [--eps=]
//   [--max-phases=N] [--journal=path] [--resume=path]
//                    [--threads=N]
int cmd_fluid(const Args& args);
// flexnets_cli sim   --topo=... --workload=... --routing=... [--rate=...]
int cmd_sim(const Args& args);
// flexnets_cli dyn   --tors=32 --ports=4 --scheduler=rotor|demand-aware
int cmd_dyn(const Args& args);

void print_usage();

}  // namespace flexnets::cli
