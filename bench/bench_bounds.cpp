// Analytic bounds vs measured throughput across topology families --
// quantifies the paper's footnote 1: bisection bandwidth ("Metric of
// Goodness") can be far from real throughput, while the path-length bound
// tracks it tightly.
#include <cstdio>

#include "flow/bounds.hpp"
#include "flow/throughput.hpp"
#include "flow/tm_generators.hpp"
#include "topo/dragonfly.hpp"
#include "topo/fat_tree.hpp"
#include "topo/jellyfish.hpp"
#include "topo/long_hop.hpp"
#include "topo/slim_fly.hpp"
#include "topo/xpander.hpp"
#include "util.hpp"

using namespace flexnets;

int main(int argc, char** argv) {
  bench::banner("Bounds validation",
                "measured throughput vs path-length bound vs bisection proxy");
  const int threads = bench::parse_threads(argc, argv);

  struct Entry {
    std::string label;
    topo::Topology t;
  };
  std::vector<Entry> entries;
  entries.push_back({"fat-tree k=8", topo::fat_tree(8).topo});
  entries.push_back({"jellyfish 50x7", topo::jellyfish(50, 7, 6, 1)});
  entries.push_back({"xpander 54x5", topo::xpander(5, 9, 6, 1).topo});
  entries.push_back({"slimfly q=5", topo::slim_fly(5, 6).topo});
  entries.push_back({"longhop 64x7", topo::long_hop(6, 1, 6)});
  entries.push_back({"dragonfly a4h2", topo::dragonfly(4, 2, 3).topo});

  struct Row {
    double measured = 0.0;
    double bound = 0.0;
    double bisection = 0.0;
  };
  const auto rows =
      bench::run_grid(entries.size(), threads, [&](std::size_t i) {
        const auto& e = entries[i];
        const auto active = flow::pick_active_racks(
            e.t, static_cast<int>(e.t.tors().size()), 1);
        const auto tm = flow::longest_matching_tm(e.t, active);
        return Row{flow::per_server_throughput(e.t, tm, {0.06}),
                   flow::path_length_upper_bound(e.t, tm),
                   flow::bisection_per_server(e.t)};
      });

  TextTable t({"topology", "measured_tput", "pathlen_bound",
               "bound/measured", "bisection_per_srv"});
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& r = rows[i];
    t.add_row({entries[i].label, TextTable::fmt(r.measured, 3),
               TextTable::fmt(r.bound, 3),
               TextTable::fmt(r.measured > 0 ? r.bound / r.measured : 0.0, 2),
               TextTable::fmt(r.bisection, 3)});
  }
  t.print();
  std::printf(
      "\nReading: the path-length bound stays within a small factor of the\n"
      "measured worst-case-permutation throughput for every family; the\n"
      "spectral bisection proxy orders topologies differently (footnote 1:\n"
      "bisection can be a log factor away from throughput).\n");
  return 0;
}
