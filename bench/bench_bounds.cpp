// Analytic bounds vs measured throughput across topology families --
// quantifies the paper's footnote 1: bisection bandwidth ("Metric of
// Goodness") can be far from real throughput, while the path-length bound
// tracks it tightly.
#include <cstdio>
#include <cstring>

#include "flow/bounds.hpp"
#include "flow/bracket.hpp"
#include "flow/throughput.hpp"
#include "flow/tm_generators.hpp"
#include "flow/tm_view.hpp"
#include "topo/csr_build.hpp"
#include "topo/dragonfly.hpp"
#include "topo/fat_tree.hpp"
#include "topo/jellyfish.hpp"
#include "topo/long_hop.hpp"
#include "topo/slim_fly.hpp"
#include "topo/xpander.hpp"
#include "perf_json.hpp"
#include "util.hpp"

using namespace flexnets;

namespace {

struct Entry {
  std::string label;
  topo::Topology t;
};

// --bracket-only: skip the GK solves entirely and print the cheap
// cut/dual bracket (flow/bracket.hpp) for each family — the bound-only
// screening mode that stays usable at scales the FPTAS cannot touch.
int run_bracket_only(const std::vector<Entry>& entries, int threads) {
  struct Row {
    flow::ThroughputBracket br;
    double bracket_ms = 0.0;
  };
  const auto rows =
      bench::run_grid(entries.size(), threads, [&](std::size_t i) {
        const auto& e = entries[i];
        const auto ct = topo::csr_from(e.t);
        const auto active = flow::pick_active_racks_csr(
            ct, static_cast<int>(ct.tors().size()), 1);
        const auto view = flow::longest_matching_view(ct, active);
        const double t0 = bench::monotonic_ns();
        Row r;
        r.br = flow::throughput_bracket(ct, view);
        r.bracket_ms = (bench::monotonic_ns() - t0) / 1e6;
        return r;
      });

  TextTable t({"topology", "lower", "upper", "node_cut", "spectral_cut",
               "pathlen", "ms"});
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& r = rows[i];
    t.add_row({entries[i].label, TextTable::fmt(r.br.lower, 3),
               TextTable::fmt(r.br.upper, 3),
               TextTable::fmt(r.br.upper_node_cut, 3),
               TextTable::fmt(r.br.upper_spectral_cut, 3),
               TextTable::fmt(r.br.upper_path_length, 3),
               TextTable::fmt(r.bracket_ms, 2)});
  }
  t.print();
  std::printf(
      "\nReading: [lower, upper] brackets the GK lambda for the same\n"
      "longest-matching TM without a single solver phase; when the bracket\n"
      "is tight the solve can be skipped (the tests/csr property suite\n"
      "checks containment against GK on these families).\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Bounds validation",
                "measured throughput vs path-length bound vs bisection proxy");
  const int threads = bench::parse_threads(argc, argv);

  std::vector<Entry> entries;
  entries.push_back({"fat-tree k=8", topo::fat_tree(8).topo});
  entries.push_back({"jellyfish 50x7", topo::jellyfish(50, 7, 6, 1)});
  entries.push_back({"xpander 54x5", topo::xpander(5, 9, 6, 1).topo});
  entries.push_back({"slimfly q=5", topo::slim_fly(5, 6).topo});
  entries.push_back({"longhop 64x7", topo::long_hop(6, 1, 6)});
  entries.push_back({"dragonfly a4h2", topo::dragonfly(4, 2, 3).topo});

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--bracket-only") == 0) {
      return run_bracket_only(entries, threads);
    }
  }

  struct Row {
    double measured = 0.0;
    double bound = 0.0;
    double bisection = 0.0;
  };
  const auto rows =
      bench::run_grid(entries.size(), threads, [&](std::size_t i) {
        const auto& e = entries[i];
        const auto active = flow::pick_active_racks(
            e.t, static_cast<int>(e.t.tors().size()), 1);
        const auto tm = flow::longest_matching_tm(e.t, active);
        return Row{flow::per_server_throughput(e.t, tm, {0.06}),
                   flow::path_length_upper_bound(e.t, tm),
                   flow::bisection_per_server(e.t)};
      });

  TextTable t({"topology", "measured_tput", "pathlen_bound",
               "bound/measured", "bisection_per_srv"});
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& r = rows[i];
    t.add_row({entries[i].label, TextTable::fmt(r.measured, 3),
               TextTable::fmt(r.bound, 3),
               TextTable::fmt(r.measured > 0 ? r.bound / r.measured : 0.0, 2),
               TextTable::fmt(r.bisection, 3)});
  }
  t.print();
  std::printf(
      "\nReading: the path-length bound stays within a small factor of the\n"
      "measured worst-case-permutation throughput for every family; the\n"
      "spectral bisection proxy orders topologies differently (footnote 1:\n"
      "bisection can be a log factor away from throughput).\n");
  return 0;
}
