// Reproduces paper Fig 13: the ProjecToR-style comparison. 128 ToRs with 16
// network ports each (static, vs ProjecToR's 16 dynamic ports), 8 servers
// per ToR, no other switches; baseline is the full k=16 fat-tree.
// Panels (a)/(b) ignore server-level bottlenecks (access links are given
// effectively unlimited rate, as in ProjecToR's analysis); panel (c)
// models them.
//
// SUBSTITUTION (DESIGN.md): ProjecToR's Microsoft rack-pair trace is not
// public; per the paper itself, Skew(0.04, 0.77) is its simplification --
// compare with bench_fig14, whose results the paper reports as "largely
// similar".
#include <cstdio>

#include "topo/xpander.hpp"
#include "util.hpp"
#include "workload/flow_size.hpp"

using namespace flexnets;

int main() {
  bench::banner("Fig 13",
                "ProjecToR-style comparison (Skew(0.04,0.77) stands in for "
                "the Microsoft trace)");

  const bool full = core::repro_full();
  // Paper: fat-tree k=16 vs 128 ToRs x 16 network ports, 8 servers each.
  // Scaled: fat-tree k=8 vs 32 ToRs x 8 network ports, 4 servers each.
  const auto ft = full ? topo::fat_tree(16) : topo::fat_tree(8);
  const auto xp = full ? topo::xpander_for(128, 16, 8, /*seed=*/1)
                       : topo::xpander_for(32, 8, 4, /*seed=*/1);
  const auto sizes = workload::pfabric_web_search();

  const double theta = 0.04;
  const double phi = 0.77;
  const std::vector<double> per_server =
      full ? std::vector<double>{2, 4, 6, 8, 11, 14}
           : std::vector<double>{8, 16, 32, 48, 64};

  const RateBps unconstrained = 200 * kGbps;
  for (const bool server_bottleneck : {false, true}) {
    const RateBps rate_srv = server_bottleneck ? 10 * kGbps : unconstrained;
    const std::vector<bench::Scenario> scenarios{
        {"fat-tree", &ft.topo, routing::RoutingMode::kEcmp, rate_srv},
        {"xpander-ECMP", &xp, routing::RoutingMode::kEcmp, rate_srv},
        {"xpander-HYB", &xp, routing::RoutingMode::kHyb, rate_srv},
    };
    std::printf("%s\n",
                server_bottleneck
                    ? ">>> server-switch links at line rate (panel c)"
                    : ">>> server-level bottlenecks ignored (panels a, b)");
    std::vector<bench::SweepRow> rows;
    for (const double rate : per_server) {
      bench::SweepRow row;
      row.x = rate;
      for (const auto& s : scenarios) {
        const auto pairs = workload::skew_pairs(*s.topo, theta, phi, 17);
        row.results.push_back(
            bench::run_point(s, *pairs, *sizes, rate, /*seed=*/37, full));
      }
      rows.push_back(std::move(row));
    }
    bench::print_three_panels("rate_per_server_s", scenarios, rows);
  }
  std::printf(
      "Expected shape (paper): with server bottlenecks ignored, Xpander-HYB\n"
      "achieves up to ~90%% lower average and tail FCT than the fat-tree as\n"
      "load rises (the fat-tree hits its 8 ToR uplinks; Xpander has 16).\n"
      "With server bottlenecks modeled, the full-bandwidth fat-tree leaves\n"
      "no room to improve and Xpander matches it.\n");
  return 0;
}
