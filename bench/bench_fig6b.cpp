// Reproduces paper Fig 6(b): Jellyfish built with the same switches as a
// full fat-tree but hosting TWICE the servers, across fat-tree scales
// (paper: k = 12, 24, 36). The advantage is consistent or improves with k.
// Default scale: k in {8, 12}. REPRO_FULL=1: k in {12, 24, 36}.
#include <cstdio>

#include "core/fluid_runner.hpp"
#include "topo/fat_tree.hpp"
#include "topo/jellyfish.hpp"
#include "util.hpp"

using namespace flexnets;

int main(int argc, char** argv) {
  bench::banner("Fig 6(b)",
                "Jellyfish with a fat-tree's switches and 2x its servers");
  const int threads = bench::parse_threads(argc, argv);
  const auto flags = bench::parse_resilient_flags(argc, argv);
  bench::ResilientState state;
  bench::init_resilient_state(flags, &state);

  const bool full = core::repro_full();
  const std::vector<int> ks = full ? std::vector<int>{12, 24, 36}
                                   : std::vector<int>{8, 12};

  core::FluidSweepOptions opts;
  opts.eps = full ? 0.12 : 0.07;
  opts.threads = threads;

  struct Cell {
    std::vector<core::FluidPointRecord> sweep;
    std::string info;
  };
  const auto cells = bench::run_grid(ks.size(), threads, [&](std::size_t i) {
    const int k = ks[i];
    const auto ft = topo::fat_tree(k);
    const int servers = 2 * ft.topo.num_servers();
    const auto jf = topo::jellyfish_same_equipment(ft.topo.num_switches(), k,
                                                   servers, 1);
    Cell c;
    c.sweep = bench::sweep_with_flags(jf, opts,
                                      "fig6b/k" + std::to_string(k), &state,
                                      flags.point_sleep_ms);
    c.info = "  k=" + std::to_string(k) + ": " +
             std::to_string(ft.topo.num_switches()) + " switches of radix " +
             std::to_string(k) + ", " + std::to_string(servers) +
             " servers (fat-tree: " + std::to_string(ft.topo.num_servers()) +
             ")";
    return c;
  });
  std::vector<std::vector<core::FluidPointRecord>> series;
  std::vector<std::string> labels;
  for (std::size_t i = 0; i < ks.size(); ++i) {
    std::printf("%s\n", cells[i].info.c_str());
    series.push_back(cells[i].sweep);
    labels.push_back("k=" + std::to_string(ks[i]));
  }
  std::printf("\n");

  std::vector<std::string> header{"fraction_x"};
  header.insert(header.end(), labels.begin(), labels.end());
  TextTable t(header);
  for (std::size_t i = 0; i < opts.fractions.size(); ++i) {
    std::vector<double> row{opts.fractions[i]};
    for (const auto& s : series) row.push_back(s[i].point.throughput);
    t.add_row(row, 3);
  }
  t.print();
  std::printf(
      "\nExpected shape (paper): despite hosting 2x the servers on the same\n"
      "switches, Jellyfish reaches full per-server throughput once a\n"
      "minority of servers participate, and larger k only helps.\n\n");
  for (std::size_t i = 0; i < series.size(); ++i) {
    bench::print_digest_line("fig6b/" + labels[i],
                             core::fluid_sweep_digest(series[i]),
                             series[i].size(),
                             bench::count_failed(series[i]));
  }
  return 0;
}
