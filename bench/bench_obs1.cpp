// Verifies paper Observation 1 numerically: a fat-tree oversubscribed to x
// of full capacity admits a traffic matrix over a 2/k fraction of servers
// that achieves no more than x per-server throughput -- measured with the
// fluid-flow engine on actual stripped fat-trees.
#include <cstdio>

#include "flow/throughput.hpp"
#include "flow/tm_generators.hpp"
#include "topo/fat_tree.hpp"
#include "util.hpp"

using namespace flexnets;

int main() {
  bench::banner("Observation 1",
                "oversubscribed fat-trees are capped at x for 2/k-fraction TMs");

  const int k = core::repro_full() ? 12 : 8;
  const int full_cores = (k / 2) * (k / 2);
  const double eps = 0.04;

  TextTable t({"oversubscription_x", "cores_kept", "pod_pair_TM_throughput",
               "bound_x"});
  for (const double x : {0.25, 0.5, 0.75, 1.0}) {
    const int cores = std::max(1, static_cast<int>(x * full_cores));
    const auto ft = topo::fat_tree_stripped(k, cores);
    // The constructive TM of Observation 1: every server in pod 0 sends to
    // a unique server in pod 1 (rack i -> rack (k/2)+i, full demand).
    flow::TrafficMatrix tm;
    for (int r = 0; r < k / 2; ++r) {
      tm.commodities.push_back(
          {r, k / 2 + r, static_cast<double>(k / 2)});
      tm.commodities.push_back(
          {k / 2 + r, r, static_cast<double>(k / 2)});
    }
    const double tput = flow::per_server_throughput(ft.topo, tm, {eps});
    t.add_row({TextTable::fmt(static_cast<double>(cores) / full_cores, 2),
               std::to_string(cores), TextTable::fmt(tput, 3),
               TextTable::fmt(static_cast<double>(cores) / full_cores, 3)});
  }
  t.print();
  std::printf(
      "\nExpected: measured throughput tracks the oversubscription fraction\n"
      "even though the TM involves only 2/k = %.1f%% of the servers.\n",
      200.0 / k);
  return 0;
}
