// Ablation of the HYB routing scheme's two knobs (paper section 6.3):
//
//  (1) the Q threshold (bytes of ECMP before switching to VLB), swept from
//      0 (pure VLB) through infinity (pure ECMP) on the adjacent-rack
//      hotspot -- the scenario HYB exists to fix;
//  (2) the flowlet gap, swept on the same workload, showing 50us balances
//      path re-selection against packet reordering.
#include <cstdio>
#include <limits>

#include "topo/xpander.hpp"
#include "util.hpp"
#include "workload/flow_size.hpp"

using namespace flexnets;

namespace {

core::PacketResult run(const topo::Topology& topo,
                       const workload::PairDistribution& pairs,
                       const workload::FlowSizeDistribution& sizes,
                       Bytes q_threshold, TimeNs flowlet_gap, double rate,
                       bool full) {
  core::PacketSimOptions opts = bench::default_packet_options(full);
  opts.arrival_rate = rate;
  opts.net.routing.mode = routing::RoutingMode::kHyb;
  opts.net.routing.hyb_threshold = q_threshold;
  opts.net.routing.flowlet_gap = flowlet_gap;
  opts.seed = 61;
  return core::run_packet_experiment(topo, pairs, sizes, opts);
}

}  // namespace

int main() {
  bench::banner("Ablation: HYB design knobs",
                "Q threshold and flowlet gap on the adjacent-rack hotspot");

  const bool full = core::repro_full();
  auto topos = bench::section64_topologies(full);
  const auto& xp = topos.xpander;
  const auto e0 = xp.g.edge(0);
  const int per_rack = full ? 5 : 3;
  const auto pairs = workload::two_rack_pairs(xp, e0.a, e0.b, per_rack);
  const auto sizes = workload::pfabric_web_search();
  // A rate that clearly saturates the single direct link.
  const double rate = full ? 1500.0 : 750.0;

  std::printf("(1) Q-threshold sweep (flowlet gap fixed at 50us)\n");
  {
    TextTable t({"Q_bytes", "avg_FCT_ms", "p99_short_FCT_ms",
                 "long_tput_Gbps", "health"});
    const Bytes inf = std::numeric_limits<Bytes>::max();
    for (const Bytes q : std::vector<Bytes>{0, 10 * kKB, 100 * kKB, 1 * kMB,
                                            inf}) {
      const auto r =
          run(xp, *pairs, *sizes, q, 50 * kMicrosecond, rate, full);
      t.add_row({q == 0 ? "0 (pure VLB)"
                        : q == inf ? "inf (pure ECMP)" : std::to_string(q),
                 TextTable::fmt(r.fct.avg_fct_ms, 3),
                 TextTable::fmt(r.fct.p99_short_fct_ms, 3),
                 TextTable::fmt(r.fct.avg_long_tput_gbps, 3),
                 bench::health_note(r)});
    }
    t.print();
  }

  std::printf(
      "\nExpected: pure ECMP collapses (single direct link); Q around the\n"
      "paper's 100KB keeps short flows on short paths while long flows\n"
      "spread; very large Q degrades toward ECMP.\n\n");

  std::printf("(2) flowlet-gap sweep (Q fixed at 100KB)\n");
  {
    TextTable t({"flowlet_gap_us", "avg_FCT_ms", "p99_short_FCT_ms",
                 "long_tput_Gbps", "health"});
    for (const TimeNs gap :
         {10 * kMicrosecond, 50 * kMicrosecond, 200 * kMicrosecond,
          1000 * kMicrosecond}) {
      const auto r = run(xp, *pairs, *sizes, 100 * kKB, gap, rate, full);
      t.add_row({TextTable::fmt(to_micros(gap), 0),
                 TextTable::fmt(r.fct.avg_fct_ms, 3),
                 TextTable::fmt(r.fct.p99_short_fct_ms, 3),
                 TextTable::fmt(r.fct.avg_long_tput_gbps, 3),
                 bench::health_note(r)});
    }
    t.print();
  }
  std::printf(
      "\nExpected: tiny gaps re-route aggressively (reordering risk, more\n"
      "dupacks); very large gaps pin flowlets to stale paths; 50us (the\n"
      "paper's setting) sits in the sweet spot.\n");
  return 0;
}
