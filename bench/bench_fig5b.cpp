// Reproduces paper Fig 5(b): same comparison as Fig 5(a) but against the
// LongHop topology (paper: 512 ToRs, 10 network + 8 server ports).
// Default scale: 64 ToRs (dim 6 + 1 long hop). REPRO_FULL=1: 512 ToRs.
#include <cstdio>

#include "core/fluid_runner.hpp"
#include "flow/dynamic_models.hpp"
#include "flow/fat_tree_model.hpp"
#include "topo/jellyfish.hpp"
#include "topo/long_hop.hpp"
#include "util.hpp"

using namespace flexnets;

int main(int argc, char** argv) {
  bench::banner("Fig 5(b)",
                "throughput proportionality / dynamic models vs LongHop and "
                "Jellyfish");
  const int threads = bench::parse_threads(argc, argv);
  const auto flags = bench::parse_resilient_flags(argc, argv);
  const auto shard = bench::parse_shard_flags(argc, argv);
  bench::ResilientState state;
  // Workers never journal: the coordinator alone writes the merged file.
  if (shard.worker_grid.empty()) bench::init_resilient_state(flags, &state);

  const bool full = core::repro_full();
  const int dim = full ? 9 : 6;
  const int servers = full ? 8 : 6;
  const auto lh = topo::long_hop(dim, 1, servers);
  const int net_ports = lh.g.degree(0);
  const auto jf =
      topo::jellyfish(lh.num_switches(), net_ports, servers, /*seed=*/1);
  const double delta = 1.5;

  std::printf("topology: %d ToRs, %d network + %d server ports each\n\n",
              lh.num_switches(), net_ports, servers);

  core::FluidSweepOptions opts;
  opts.eps = full ? 0.12 : 0.07;
  opts.threads = threads;
  const topo::Topology* grid[] = {&jf, &lh};
  const char* prefixes[] = {"fig5b/jellyfish", "fig5b/longhop"};
  const auto sweeps = bench::run_grid(2, threads, [&](std::size_t i) {
    return bench::sweep_with_flags_sharded(argc, argv, *grid[i], opts,
                                           prefixes[i], &state, flags, shard);
  });
  const auto& jf_series = sweeps[0];
  const auto& lh_series = sweeps[1];
  const double alpha = jf_series.back().point.throughput;

  const int ports = lh.num_switches() * net_ports;
  const double ft_alpha =
      std::min(1.0, static_cast<double>(ports) / (4.0 * lh.num_servers()));
  const int radix = net_ports + servers;
  const flow::FatTreeModel ft{radix - (radix % 2), ft_alpha};

  TextTable t({"fraction_x", "TP_ideal", "jellyfish", "longhop",
               "unrestricted_dyn_d1.5", "restricted_dyn_d1.5",
               "equalcost_fattree"});
  for (std::size_t i = 0; i < opts.fractions.size(); ++i) {
    const double x = opts.fractions[i];
    t.add_row({x, flow::tp_curve(alpha, x), jf_series[i].point.throughput,
               lh_series[i].point.throughput,
               flow::unrestricted_dynamic_throughput(net_ports, servers,
                                                     delta),
               flow::restricted_dynamic_throughput(
                   static_cast<int>(x * lh.num_switches()), net_ports,
                   servers, delta),
               ft.throughput(x)},
              3);
  }
  t.print();
  std::printf(
      "\nExpected shape (paper): broadly similar to Fig 5(a); Jellyfish\n"
      "stays at or above LongHop (LongHop is a structured non-optimal\n"
      "expander) and both dominate the dynamic models at small x.\n\n");
  bench::print_digest_line("fig5b/jellyfish", core::fluid_sweep_digest(jf_series),
                           jf_series.size(), bench::count_failed(jf_series));
  bench::print_digest_line("fig5b/longhop", core::fluid_sweep_digest(lh_series),
                           lh_series.size(), bench::count_failed(lh_series));
  return 0;
}
