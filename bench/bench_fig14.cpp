// Reproduces paper Fig 14: the same ProjecToR-style setting as Fig 13 but
// explicitly with the Skew(theta=0.04, phi=0.77) ToR-communication model
// (the paper's simplification of the ProjecToR matrix): average FCT and
// short-flow tail with server bottlenecks ignored, plus average FCT with
// them modeled.
#include <cstdio>

#include "topo/xpander.hpp"
#include "util.hpp"
#include "workload/flow_size.hpp"

using namespace flexnets;

int main() {
  bench::banner("Fig 14", "Skew(0.04, 0.77), ProjecToR-style configuration");

  const bool full = core::repro_full();
  const auto ft = full ? topo::fat_tree(16) : topo::fat_tree(8);
  const auto xp = full ? topo::xpander_for(128, 16, 8, /*seed=*/1)
                       : topo::xpander_for(32, 8, 4, /*seed=*/1);
  const auto sizes = workload::pfabric_web_search();

  // Different seed than Fig 13 -> a different random hot-rack set, to show
  // the conclusion is not an artifact of one skew draw.
  const std::uint64_t skew_seed = 41;
  const std::vector<double> per_server =
      full ? std::vector<double>{4, 8, 12, 16, 20, 24}
           : std::vector<double>{8, 16, 32, 48, 64};

  const RateBps unconstrained = 200 * kGbps;
  for (const bool server_bottleneck : {false, true}) {
    const RateBps rate_srv = server_bottleneck ? 10 * kGbps : unconstrained;
    const std::vector<bench::Scenario> scenarios{
        {"fat-tree", &ft.topo, routing::RoutingMode::kEcmp, rate_srv},
        {"xpander-ECMP", &xp, routing::RoutingMode::kEcmp, rate_srv},
        {"xpander-HYB", &xp, routing::RoutingMode::kHyb, rate_srv},
    };
    std::printf("%s\n",
                server_bottleneck
                    ? ">>> server-switch links at line rate (panel c)"
                    : ">>> server-level bottlenecks ignored (panels a, b)");
    std::vector<bench::SweepRow> rows;
    for (const double rate : per_server) {
      bench::SweepRow row;
      row.x = rate;
      for (const auto& s : scenarios) {
        const auto pairs = workload::skew_pairs(*s.topo, 0.04, 0.77,
                                                skew_seed);
        row.results.push_back(
            bench::run_point(s, *pairs, *sizes, rate, /*seed=*/43, full));
      }
      rows.push_back(std::move(row));
    }
    bench::print_three_panels("rate_per_server_s", scenarios, rows);
  }
  std::printf(
      "Expected shape (paper): largely similar to Fig 13 -- Xpander-HYB\n"
      "dominates the fat-tree when ToR uplinks are the bottleneck, and\n"
      "matches it when server NICs bind first.\n");
  return 0;
}
