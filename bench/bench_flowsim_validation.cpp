// Fidelity check: the flow-level max-min simulator vs the packet-level
// DCTCP simulator on identical flow sets. The flow-level model has no
// headers, no slow start, no RTOs -- FCTs are optimistic -- but it must
// preserve orderings (who wins) and rough factors; this bench quantifies
// the gap and the speedup that justifies using it at paper scale.
#include <chrono>
#include <cstdio>

#include "flowsim/flow_sim.hpp"
#include "metrics/fct_tracker.hpp"
#include "util.hpp"
#include "workload/flow_size.hpp"

using namespace flexnets;

namespace {

struct Result {
  metrics::FctSummary fct;
  double wall_sec = 0.0;
};

Result run_packet(const topo::Topology& t, routing::RoutingMode mode,
                  const std::vector<workload::FlowSpec>& flows,
                  const core::PacketSimOptions& opts) {
  sim::NetworkConfig cfg = opts.net;
  cfg.routing.mode = mode;
  const auto t0 = std::chrono::steady_clock::now();
  sim::PacketNetwork net(t, cfg);
  net.run(flows, opts.hard_stop);
  Result r;
  r.wall_sec = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
  std::vector<metrics::FlowRecord> records;
  for (std::size_t i = 0; i < net.engine().num_flows(); ++i) {
    const auto& f = net.engine().flow(static_cast<std::int32_t>(i));
    records.push_back({f.start_time, f.completion_time, f.size});
  }
  r.fct = metrics::summarize(records, opts.window_begin, opts.window_end,
                             workload::kShortFlowThreshold);
  return r;
}

Result run_fluid(const topo::Topology& t, flowsim::FlowRouting mode,
                 const std::vector<workload::FlowSpec>& flows,
                 const core::PacketSimOptions& opts) {
  flowsim::FlowSimConfig cfg;
  cfg.routing = mode;
  const auto t0 = std::chrono::steady_clock::now();
  flowsim::FlowLevelSimulator sim(t, cfg);
  const auto records = sim.run(flows);
  Result r;
  r.wall_sec = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
  r.fct = metrics::summarize(records, opts.window_begin, opts.window_end,
                             workload::kShortFlowThreshold);
  return r;
}

}  // namespace

int main() {
  bench::banner("Flow-level simulator validation",
                "max-min fluid model vs packet-level DCTCP, same flow sets");

  const bool full = core::repro_full();
  auto topos = bench::section64_topologies(full);
  const auto& xp = topos.xpander;
  const auto opts = bench::default_packet_options(full);
  const auto sizes = workload::pfabric_web_search();

  const struct Case {
    const char* label;
    double fraction;
    bool permute;
  } cases[] = {
      {"A2A(0.5)", 0.5, false},
      {"Permute(0.5)", 0.5, true},
      {"A2A(1.0)", 1.0, false},
  };

  TextTable t({"workload", "scheme", "packet_avgFCT_ms", "fluid_avgFCT_ms",
               "packet_tput_G", "fluid_tput_G", "speedup"});
  for (const auto& c : cases) {
    const auto active = workload::random_fraction_racks(xp, c.fraction, 5);
    std::unique_ptr<workload::PairDistribution> pairs;
    if (c.permute) {
      pairs = workload::permutation_pairs(xp, active, 21);
    } else {
      pairs = workload::all_to_all_pairs(xp, active);
    }
    int active_servers = 0;
    for (const auto r : pairs->active_racks()) {
      active_servers += xp.servers_per_switch[r];
    }
    const double rate = 150.0 * active_servers;
    const int num_flows = static_cast<int>(
        rate * to_seconds(opts.window_end + opts.arrival_tail));
    const auto flows =
        workload::generate_flows(*pairs, *sizes, rate, num_flows, 13);

    const struct {
      const char* label;
      routing::RoutingMode pkt;
      flowsim::FlowRouting fluid;
    } schemes[] = {
        {"ECMP", routing::RoutingMode::kEcmp,
         flowsim::FlowRouting::kEcmpSampled},
        {"HYB", routing::RoutingMode::kHyb, flowsim::FlowRouting::kHyb},
    };
    for (const auto& s : schemes) {
      const auto p = run_packet(xp, s.pkt, flows, opts);
      const auto f = run_fluid(xp, s.fluid, flows, opts);
      t.add_row({c.label, s.label, TextTable::fmt(p.fct.avg_fct_ms, 3),
                 TextTable::fmt(f.fct.avg_fct_ms, 3),
                 TextTable::fmt(p.fct.avg_long_tput_gbps, 2),
                 TextTable::fmt(f.fct.avg_long_tput_gbps, 2),
                 TextTable::fmt(p.wall_sec / std::max(1e-9, f.wall_sec), 0) +
                     "x"});
    }
  }
  t.print();
  std::printf(
      "\nReading: fluid FCTs are optimistic (no headers/slow-start/loss)\n"
      "but preserve the scheme ordering per workload; the speedup column\n"
      "is why the flow-level engine exists (paper-scale sweeps on one\n"
      "core, see bench_fig9_flowlevel).\n");
  return 0;
}
