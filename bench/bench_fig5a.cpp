// Reproduces paper Fig 5(a): per-server throughput vs fraction of servers
// with traffic demand, comparing
//   - throughput proportionality (ideal, anchored at Jellyfish's x=1 value)
//   - Jellyfish (same equipment as the SlimFly)
//   - SlimFly
//   - unrestricted dynamic model (delta=1.5)
//   - restricted dynamic model (delta=1.5)
//   - equal-cost oversubscribed fat-tree (analytic model of section 2)
//
// Default scale: SlimFly q=5 (50 ToRs, 7 network + 6 server ports).
// REPRO_FULL=1: the paper's q=17 (578 ToRs, 25 network + 24 server ports).
#include <cstdio>

#include "core/fluid_runner.hpp"
#include "flow/dynamic_models.hpp"
#include "flow/fat_tree_model.hpp"
#include "topo/jellyfish.hpp"
#include "topo/slim_fly.hpp"
#include "util.hpp"

using namespace flexnets;

int main(int argc, char** argv) {
  bench::banner("Fig 5(a)",
                "throughput proportionality / dynamic models vs SlimFly and "
                "Jellyfish");
  const int threads = bench::parse_threads(argc, argv);
  const auto flags = bench::parse_resilient_flags(argc, argv);
  const auto shard = bench::parse_shard_flags(argc, argv);
  bench::ResilientState state;
  // Workers never journal: the coordinator alone writes the merged file.
  if (shard.worker_grid.empty()) bench::init_resilient_state(flags, &state);

  const bool full = core::repro_full();
  const int q = full ? 13 : 5;  // q=17 (paper) is feasible but hours-long on one core
  const auto sf = topo::slim_fly(q, full ? 24 : 6);
  const int net_ports = sf.network_degree();
  const int srv_ports = sf.topo.servers_per_switch[0];
  const auto jf = topo::jellyfish(sf.topo.num_switches(), net_ports,
                                  srv_ports, /*seed=*/1);
  const double delta = 1.5;

  std::printf("topology: %d ToRs, %d network + %d server ports each\n\n",
              sf.topo.num_switches(), net_ports, srv_ports);

  core::FluidSweepOptions opts;
  opts.eps = full ? 0.12 : 0.07;
  opts.threads = threads;
  // The topology grid runs on the same pool the per-topology sweeps share.
  const topo::Topology* grid[] = {&jf, &sf.topo};
  const char* prefixes[] = {"fig5a/jellyfish", "fig5a/slimfly"};
  const auto sweeps = bench::run_grid(2, threads, [&](std::size_t i) {
    return bench::sweep_with_flags_sharded(argc, argv, *grid[i], opts,
                                           prefixes[i], &state, flags, shard);
  });
  const auto& jf_series = sweeps[0];
  const auto& sf_series = sweeps[1];
  const double alpha = jf_series.back().point.throughput;  // x = 1.0 anchor

  // Equal-cost fat-tree (analytic): same port budget supporting the same
  // servers; a full-bandwidth fat-tree spends 4 network ports per server.
  const int ports = sf.topo.num_switches() * net_ports;
  const int servers = sf.topo.num_servers();
  const double ft_alpha =
      std::min(1.0, static_cast<double>(ports) / (4.0 * servers));
  const int radix = net_ports + srv_ports;
  const flow::FatTreeModel ft{radix - (radix % 2), ft_alpha};

  TextTable t({"fraction_x", "TP_ideal", "jellyfish", "slimfly",
               "unrestricted_dyn_d1.5", "restricted_dyn_d1.5",
               "equalcost_fattree"});
  const int num_tors = sf.topo.num_switches();
  for (std::size_t i = 0; i < opts.fractions.size(); ++i) {
    const double x = opts.fractions[i];
    t.add_row({x, flow::tp_curve(alpha, x), jf_series[i].point.throughput,
               sf_series[i].point.throughput,
               flow::unrestricted_dynamic_throughput(net_ports, srv_ports,
                                                     delta),
               flow::restricted_dynamic_throughput(
                   static_cast<int>(x * num_tors), net_ports, srv_ports,
                   delta),
               ft.throughput(x)},
              3);
  }
  t.print();
  std::printf(
      "\nExpected shape (paper): Jellyfish/SlimFly rise toward 1.0 as x\n"
      "shrinks, tracking TP; the restricted dynamic model stays poor; the\n"
      "unrestricted model is flat at min(1, (r/delta)/s); the fat-tree is\n"
      "flat and lowest. The shaded regime of interest is small x.\n\n");
  bench::print_digest_line("fig5a/jellyfish", core::fluid_sweep_digest(jf_series),
                           jf_series.size(), bench::count_failed(jf_series));
  bench::print_digest_line("fig5a/slimfly", core::fluid_sweep_digest(sf_series),
                           sf_series.size(), bench::count_failed(sf_series));
  return 0;
}
