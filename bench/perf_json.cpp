#include "perf_json.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

namespace flexnets::bench {

namespace {

// Doubles that are whole numbers (counts, call totals) print as integers;
// everything else keeps full round-trip precision.
std::string format_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string case_line(const PerfCase& c) {
  std::string out = "    {\"name\": \"" + escape(c.name) + "\"";
  for (const auto& [key, value] : c.metrics) {
    out += ", \"" + escape(key) + "\": " + format_number(value);
  }
  out += "}";
  return out;
}

bool write_document(const std::string& path, const std::string& bench_name,
                    const std::vector<std::string>& case_lines,
                    std::size_t case_count) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "perf_json: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"%s\",\n  \"schema_version\": 1,\n"
               "  \"peak_rss_kb\": %s,\n  \"cases\": [\n",
               escape(bench_name).c_str(),
               format_number(peak_rss_kb()).c_str());
  for (std::size_t i = 0; i < case_lines.size(); ++i) {
    std::fprintf(f, "%s%s\n", case_lines[i].c_str(),
                 i + 1 < case_lines.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %zu case(s) to %s\n", case_count, path.c_str());
  return true;
}

// The case name of a "    {\"name\": \"...\"" line, or empty.
std::string parse_case_name(const std::string& line) {
  const std::string prefix = "    {\"name\": \"";
  if (line.rfind(prefix, 0) != 0) return {};
  const auto end = line.find('"', prefix.size());
  if (end == std::string::npos) return {};
  return line.substr(prefix.size(), end - prefix.size());
}

}  // namespace

double monotonic_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double peak_rss_kb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      double kb = 0.0;
      if (std::sscanf(line.c_str(), "VmHWM: %lf", &kb) == 1) return kb;
    }
  }
  return 0.0;
}

bool write_perf_json(const std::string& path, const std::string& bench_name,
                     const std::vector<PerfCase>& cases) {
  std::vector<std::string> lines;
  lines.reserve(cases.size());
  for (const auto& c : cases) lines.push_back(case_line(c));
  return write_document(path, bench_name, lines, cases.size());
}

bool append_perf_json(const std::string& path, const std::string& bench_name,
                      const std::vector<PerfCase>& cases) {
  std::ifstream in(path);
  if (!in) return write_perf_json(path, bench_name, cases);

  // Preserve the existing bench name and case lines (minus any case being
  // replaced); the file is our own write_perf_json format, so line-wise
  // parsing is exact, and anything unexpected falls back to a fresh write.
  std::string existing_bench = bench_name;
  std::vector<std::string> lines;
  bool saw_cases_open = false;
  bool saw_cases_close = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("  \"bench\": \"", 0) == 0) {
      const auto end = line.rfind('"');
      existing_bench = line.substr(12, end - 12);
    } else if (line == "  \"cases\": [") {
      saw_cases_open = true;
    } else if (saw_cases_open && !saw_cases_close) {
      if (line == "  ]") {
        saw_cases_close = true;
        continue;
      }
      auto name = parse_case_name(line);
      if (name.empty()) return write_perf_json(path, bench_name, cases);
      bool replaced = false;
      for (const auto& c : cases) {
        if (c.name == name) {
          replaced = true;
          break;
        }
      }
      if (!replaced) {
        if (!line.empty() && line.back() == ',') line.pop_back();
        lines.push_back(line);
      }
    }
  }
  if (!saw_cases_close) return write_perf_json(path, bench_name, cases);

  for (const auto& c : cases) lines.push_back(case_line(c));
  return write_document(path, existing_bench, lines, cases.size());
}

bool parse_json_flag(int argc, char** argv, const std::string& default_path,
                     std::string* out_path) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      *out_path = (i + 1 < argc && argv[i + 1][0] != '-') ? argv[i + 1]
                                                          : default_path;
      return true;
    }
  }
  return false;
}

}  // namespace flexnets::bench
