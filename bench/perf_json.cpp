#include "perf_json.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>

namespace flexnets::bench {

namespace {

// Doubles that are whole numbers (counts, call totals) print as integers;
// everything else keeps full round-trip precision.
std::string format_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

double monotonic_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool write_perf_json(const std::string& path, const std::string& bench_name,
                     const std::vector<PerfCase>& cases) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "perf_json: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"schema_version\": 1,\n"
               "  \"cases\": [\n",
               escape(bench_name).c_str());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    std::fprintf(f, "    {\"name\": \"%s\"", escape(cases[i].name).c_str());
    for (const auto& [key, value] : cases[i].metrics) {
      std::fprintf(f, ", \"%s\": %s", escape(key).c_str(),
                   format_number(value).c_str());
    }
    std::fprintf(f, "}%s\n", i + 1 < cases.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %zu case(s) to %s\n", cases.size(), path.c_str());
  return true;
}

bool parse_json_flag(int argc, char** argv, const std::string& default_path,
                     std::string* out_path) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      *out_path = (i + 1 < argc && argv[i + 1][0] != '-') ? argv[i + 1]
                                                          : default_path;
      return true;
    }
  }
  return false;
}

}  // namespace flexnets::bench
