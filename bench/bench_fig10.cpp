// Reproduces paper Fig 10: Permute(x) -- random rack-level permutation
// traffic restricted to an x-fraction of racks -- with pFabric sizes at 167
// flow-starts per second per active server. The rack-to-rack consolidation
// makes this the hard case for ECMP on Xpander; HYB repairs it.
#include <cstdio>

#include "util.hpp"
#include "workload/flow_size.hpp"

using namespace flexnets;

int main() {
  bench::banner("Fig 10", "Permute(x) sweep, pFabric sizes, 167 flows/s/server");

  const bool full = core::repro_full();
  auto topos = bench::section64_topologies(full);
  const auto sizes = workload::pfabric_web_search();

  const std::vector<bench::Scenario> scenarios{
      {"fat-tree", &topos.fat_tree.topo, routing::RoutingMode::kEcmp},
      {"xpander-ECMP", &topos.xpander, routing::RoutingMode::kEcmp},
      {"xpander-HYB", &topos.xpander, routing::RoutingMode::kHyb},
  };

  const std::vector<double> fractions =
      full ? std::vector<double>{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
           : std::vector<double>{0.2, 0.4, 0.6, 0.8, 1.0};

  std::vector<bench::SweepRow> rows;
  for (const double x : fractions) {
    bench::SweepRow row;
    row.x = x;
    for (const auto& s : scenarios) {
      const auto active =
          s.topo == &topos.fat_tree.topo
              ? workload::first_fraction_racks(*s.topo, x)
              : workload::random_fraction_racks(*s.topo, x, /*seed=*/5);
      const auto pairs = workload::permutation_pairs(*s.topo, active,
                                                     /*seed=*/21);
      row.results.push_back(
          bench::run_point(s, *pairs, *sizes, 167.0, /*seed=*/13, full));
    }
    rows.push_back(std::move(row));
  }
  bench::print_three_panels("fraction_active", scenarios, rows);
  std::printf(
      "Expected shape (paper): xpander-ECMP performs extremely poorly on\n"
      "permutations (rack-pair consolidation defeats shortest paths);\n"
      "xpander-HYB matches the fat-tree when the active fraction is not\n"
      "large and degrades gracefully beyond.\n");
  return 0;
}
