// Reproduces paper Table 1: cost per network port for static and recent
// dynamic networks, and the derived flexible-port cost factor delta.
#include <cstdio>

#include "cost/cost_model.hpp"
#include "util.hpp"

using namespace flexnets;

namespace {

std::string money(double v) {
  return v == 0.0 ? "-" : "$" + TextTable::fmt(v, 0);
}

}  // namespace

int main() {
  bench::banner("Table 1", "cost per network port (component costs from ProjecToR)");

  const auto stat = cost::static_port();
  const auto ff = cost::firefly_port();
  const auto pj_lo = cost::projector_port_low();
  const auto pj_hi = cost::projector_port_high();

  TextTable t({"Component", "Static", "FireFly", "ProjecToR"});
  auto row = [&](const std::string& name, auto get) {
    const double lo = get(pj_lo);
    const double hi = get(pj_hi);
    const std::string pj =
        lo == hi ? money(lo) : money(lo) + " to " + money(hi);
    t.add_row({name, money(get(stat)), money(get(ff)), pj});
  };
  row("SR transceiver", [](const auto& p) { return p.transceiver; });
  row("Optical cable ($0.3/m)", [](const auto& p) { return p.cable; });
  row("ToR port", [](const auto& p) { return p.tor_port; });
  row("ProjecToR Tx+Rx", [](const auto& p) { return p.tx_rx; });
  row("DMD", [](const auto& p) { return p.dmd; });
  row("Mirror assembly, lens", [](const auto& p) { return p.mirror_lens; });
  row("Galvo mirror", [](const auto& p) { return p.galvo; });
  row("Total", [](const auto& p) { return p.total(); });
  t.print();

  std::printf("\nDerived flexible-port cost factor delta (vs static $%.0f):\n",
              stat.total());
  std::printf("  FireFly          delta = %.2f\n", cost::delta(ff));
  std::printf("  ProjecToR (low)  delta = %.2f\n", cost::delta(pj_lo));
  std::printf("  ProjecToR (high) delta = %.2f\n", cost::delta(pj_hi));
  std::printf(
      "\nPaper: \"the lowest estimates imply delta = 1.5\" -> an equal-cost\n"
      "dynamic network affords at most %d flexible ports per 24 static "
      "ports.\n",
      cost::equal_cost_flexible_ports(24, 1.5));
  return 0;
}
