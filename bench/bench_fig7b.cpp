// Reproduces paper Fig 7(b): only a handful of servers on two adjacent
// Xpander racks are active. ECMP is confined to the single direct link and
// its average FCT blows up once that link saturates; VLB bounces traffic
// through random via points and keeps pace with the full-bandwidth
// fat-tree. (Fig 7(a) is the schematic this experiment illustrates.)
#include <cstdio>

#include "topo/xpander.hpp"
#include "util.hpp"
#include "workload/flow_size.hpp"

using namespace flexnets;

int main(int argc, char** argv) {
  bench::banner("Fig 7(b)",
                "two adjacent racks: ECMP's single path vs VLB's diversity");

  // --threads N > 1 runs each point on the parallel packet engine
  // (sim/pdes/) -- identical numbers, less wall clock. Absent means the
  // historical serial engine.
  const int flag = bench::parse_threads(argc, argv);
  const int threads = flag == 0 ? 1 : flag;
  if (threads > 1) std::printf("packet engine: pdes, %d threads\n", threads);

  const bool full = core::repro_full();
  auto topos = bench::section64_topologies(full);

  // Active servers: paper uses 10 servers on two adjacent racks (5 + 5).
  const int per_rack = full ? 5 : 3;
  const auto xe = topos.xpander.g.edge(0);  // two adjacent Xpander ToRs
  const auto xp_pairs =
      workload::two_rack_pairs(topos.xpander, xe.a, xe.b, per_rack);
  // Fat-tree: two racks in the same pod (edge switches 0 and 1).
  const auto ft_pairs =
      workload::two_rack_pairs(topos.fat_tree.topo, 0, 1, per_rack);
  const auto sizes = workload::pfabric_web_search();

  std::vector<bench::Scenario> scenarios{
      {"fat-tree", &topos.fat_tree.topo, routing::RoutingMode::kEcmp},
      {"xpander-ECMP", &topos.xpander, routing::RoutingMode::kEcmp},
      {"xpander-VLB", &topos.xpander, routing::RoutingMode::kVlb},
  };
  for (auto& s : scenarios) s.threads = threads;

  // Aggregate flow-starts per second over the active servers. The direct
  // 10G link saturates around lambda * meansize * 8 = 10G -> ~530/s.
  const std::vector<double> lambdas =
      full ? std::vector<double>{250, 500, 1000, 2000, 3000}
           : std::vector<double>{100, 250, 500, 750, 1000};

  std::vector<bench::SweepRow> rows;
  for (const double lam : lambdas) {
    bench::SweepRow row;
    row.x = lam;
    const int active = 2 * per_rack;
    for (const auto& s : scenarios) {
      const auto& pairs = s.topo == &topos.xpander ? *xp_pairs : *ft_pairs;
      row.results.push_back(bench::run_point(
          s, pairs, *sizes, lam / active, /*seed=*/7, full));
    }
    rows.push_back(std::move(row));
  }
  bench::print_three_panels("lambda_per_s", scenarios, rows);
  std::printf(
      "Expected shape (paper): once lambda saturates the direct link\n"
      "(~500/s here), xpander-ECMP average FCT explodes while xpander-VLB\n"
      "stays close to the full-bandwidth fat-tree.\n");
  return 0;
}
