// Static expander vs an explicitly-modeled dynamic fabric (paper sections
// 4, 7.2, 8): the comparison the paper argues dynamic-network proposals
// must make. The dynamic fabric is simulated with the machinery section 4
// says is needed -- per-slot port matchings, reconfiguration delay, and
// source buffering -- under two schedulers:
//   rotor        traffic-agnostic round-robin matchings (RotorNet-style)
//   demand-aware greedy max-demand matchings (direct-connection heuristic)
// At delta = 1.5, the dynamic fabric affords floor(8/1.5) = 5 flexible
// ports against the Xpander's 8 static ports.
//
// NOTE: the dynamic fabric is simulated at flow granularity with no
// congestion control or ACK path, which strictly FAVORS it; the static
// Xpander numbers come from the full DCTCP packet simulation.
#include <cstdio>

#include "dynnet/dynamic_network.hpp"
#include "metrics/fct_tracker.hpp"
#include "topo/xpander.hpp"
#include "util.hpp"
#include "workload/flow_size.hpp"

using namespace flexnets;

namespace {

metrics::FctSummary dyn_summary(const std::vector<dynnet::DynFlowRecord>& recs,
                                const std::vector<workload::FlowSpec>& flows,
                                TimeNs w0, TimeNs w1) {
  std::vector<metrics::FlowRecord> out;
  out.reserve(recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    out.push_back({recs[i].start, recs[i].end, flows[i].size});
  }
  return metrics::summarize(out, w0, w1, workload::kShortFlowThreshold);
}

}  // namespace

int main() {
  bench::banner("Ablation: static vs explicit dynamic fabric",
                "equal cost (delta=1.5), Skew(0.04,0.77), pFabric sizes");

  const bool full = core::repro_full();
  const int tors = full ? 128 : 32;
  const int servers_per_tor = full ? 8 : 4;
  const int static_ports = full ? 16 : 8;
  const int flex_ports = static_cast<int>(static_ports / 1.5);

  const auto xp =
      topo::xpander_for(tors, static_ports, servers_per_tor, /*seed=*/1);
  const auto pairs = workload::skew_pairs(xp, 0.04, 0.77, /*seed=*/17);
  const auto sizes = workload::pfabric_web_search();
  const auto opts = bench::default_packet_options(full);

  std::printf(
      "static: %d ToRs x %d ports | dynamic: %d ToRs x %d flexible ports\n\n",
      tors, static_ports, tors, flex_ports);

  const std::vector<double> per_server =
      full ? std::vector<double>{4, 8, 16, 24}
           : std::vector<double>{8, 16, 32, 48};

  TextTable t({"rate_per_server_s", "xpander_HYB_avgFCT_ms",
               "rotor10us_avgFCT_ms", "rotor100us_avgFCT_ms",
               "demand_aware_avgFCT_ms", "health"});
  for (const double rate : per_server) {
    const double agg = rate * xp.num_servers();
    const int num_flows = std::max(
        1, static_cast<int>(agg * to_seconds(opts.window_end +
                                             opts.arrival_tail)));
    const auto flows =
        workload::generate_flows(*pairs, *sizes, agg, num_flows, /*seed=*/23);

    // Static Xpander, packet-level, HYB.
    bench::Scenario s{"xpander-HYB", &xp, routing::RoutingMode::kHyb};
    const auto sr = bench::run_point(s, *pairs, *sizes, rate, /*seed=*/23, full);

    // Dynamic fabrics (flow-level).
    auto dyn_run = [&](dynnet::Scheduler sched, TimeNs reconfig) {
      dynnet::DynNetConfig cfg;
      cfg.num_tors = tors;
      cfg.servers_per_tor = servers_per_tor;
      cfg.flex_ports = flex_ports;
      cfg.slot_duration = std::max<TimeNs>(100 * kMicrosecond, 10 * reconfig);
      cfg.reconfig_delay = reconfig;
      cfg.scheduler = sched;
      dynnet::DynamicNetwork net(cfg);
      const auto recs = net.run(flows, opts.hard_stop);
      return dyn_summary(recs, flows, opts.window_begin, opts.window_end);
    };
    const auto rotor_fast = dyn_run(dynnet::Scheduler::kRotor,
                                    10 * kMicrosecond);
    const auto rotor_slow = dyn_run(dynnet::Scheduler::kRotor,
                                    100 * kMicrosecond);
    const auto demand = dyn_run(dynnet::Scheduler::kDemandAware,
                                10 * kMicrosecond);

    std::string health = bench::health_note(sr);
    if (rotor_slow.incomplete_flows > 0) {
      health += " rotor_incomplete=" +
                std::to_string(rotor_slow.incomplete_flows);
    }
    t.add_row({TextTable::fmt(rate, 0), TextTable::fmt(sr.fct.avg_fct_ms, 3),
               TextTable::fmt(rotor_fast.avg_fct_ms, 3),
               TextTable::fmt(rotor_slow.avg_fct_ms, 3),
               TextTable::fmt(demand.avg_fct_ms, 3), health});
  }
  t.print();
  std::printf(
      "\nReading: even though the dynamic fabric is modeled WITHOUT\n"
      "congestion control, packetization, or ACKs, the equal-cost static\n"
      "expander with oblivious HYB routing stays competitive; the rotor's\n"
      "FCT floor is the wait for connectivity (slot cycle), which grows\n"
      "with reconfiguration delay -- the latency cost the paper says\n"
      "dynamic proposals must account for (section 7.2).\n");
  return 0;
}
