// Micro-benchmarks for the fluid-flow engine: Garg-Koenemann solver
// scaling in topology size and approximation parameter.
//
// Two modes:
//   (default)      google-benchmark suite, human-oriented.
//   --json [path]  runs the pinned reference cases with BOTH the optimized
//                  solver and the frozen pre-optimization baseline
//                  (flow/mcf_reference.hpp) and writes BENCH_MCF.json —
//                  the recorded perf trajectory tools/ci.sh smoke-checks.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "flow/mcf_reference.hpp"
#include "flow/throughput.hpp"
#include "flow/tm_generators.hpp"
#include "perf_json.hpp"
#include "topo/jellyfish.hpp"

namespace {

using namespace flexnets;

void BM_GargKoenemann(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const double eps = static_cast<double>(state.range(1)) / 100.0;
  const auto t = topo::jellyfish(n, 6, 4, 1);
  const auto active = flow::pick_active_racks(t, n / 2, 1);
  const auto tm = flow::longest_matching_tm(t, active);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow::per_server_throughput(t, tm, {eps}));
  }
  state.SetLabel("n=" + std::to_string(n) + " eps=" + std::to_string(eps));
}
BENCHMARK(BM_GargKoenemann)
    ->Args({16, 10})
    ->Args({32, 10})
    ->Args({64, 10})
    ->Args({32, 5})
    ->Unit(benchmark::kMillisecond);

void BM_GargKoenemannAllToAll(benchmark::State& state) {
  // The source-grouped hot case: every ToR is the source of n-1
  // commodities, so one shortest-path tree serves a whole group.
  const int n = static_cast<int>(state.range(0));
  const auto t = topo::jellyfish(n, 6, 4, 1);
  const auto tm = flow::all_to_all_tm(t, t.tors());
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow::per_server_throughput(t, tm, {0.1}));
  }
  state.SetLabel("n=" + std::to_string(n) + " a2a");
}
BENCHMARK(BM_GargKoenemannAllToAll)->Arg(16)->Arg(32)->Unit(
    benchmark::kMillisecond);

void BM_LongestMatchingTm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto t = topo::jellyfish(n, 8, 4, 1);
  const auto active = flow::pick_active_racks(t, n, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow::longest_matching_tm(t, active));
  }
}
BENCHMARK(BM_LongestMatchingTm)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// --json mode: pinned instances, optimized vs frozen-reference solver.

using SolverFn = flow::McfResult (*)(int, const std::vector<flow::DirectedEdge>&,
                                     const std::vector<flow::McfCommodity>&,
                                     double);

// Pins the optimized solver to the 4-argument shape SolverFn expects (the
// real entry grew an optional McfLimits parameter).
flow::McfResult optimized_solver(int num_nodes,
                                 const std::vector<flow::DirectedEdge>& edges,
                                 const std::vector<flow::McfCommodity>& cs,
                                 double eps) {
  return flow::max_concurrent_flow(num_nodes, edges, cs, eps);
}

bench::PerfCase run_solver_case(const std::string& name, SolverFn solver,
                                const flow::McfInstance& inst, double eps,
                                int reps) {
  flow::McfResult r;
  const double ns = bench::time_median_ns(reps, [&] {
    r = solver(inst.num_nodes, inst.edges, inst.commodities, eps);
  });
  bench::PerfCase c;
  c.name = name;
  c.add("ns_per_op", ns);
  c.add("dijkstra_calls", static_cast<double>(r.dijkstra_calls));
  c.add("phases", static_cast<double>(r.phases));
  c.add("lambda", r.lambda);
  std::printf("  %-32s %10.2f ms  dijkstra=%lld phases=%d lambda=%.4f\n",
              name.c_str(), ns / 1e6,
              static_cast<long long>(r.dijkstra_calls), r.phases, r.lambda);
  return c;
}

int run_json_mode(const std::string& path) {
  std::vector<bench::PerfCase> cases;
  const double eps = 0.1;
  const int reps = 3;

  // The acceptance-gate reference case: all-to-all on a 32-switch
  // Jellyfish — 992 commodities from 32 source groups.
  {
    const auto t = topo::jellyfish(32, 6, 4, 1);
    const auto tm = flow::all_to_all_tm(t, t.tors());
    const auto inst =
        flow::build_mcf_instance(flow::build_throughput_cache(t), tm);
    std::printf("mcf all-to-all jellyfish32 (%zu commodities, %zu edges):\n",
                inst.commodities.size(), inst.edges.size());
    auto opt = run_solver_case("a2a_jf32_eps10", optimized_solver,
                               inst, eps, reps);
    const auto ref =
        run_solver_case("a2a_jf32_eps10_reference",
                        flow::reference_max_concurrent_flow, inst, eps, reps);
    opt.add("speedup_vs_reference",
            ref.metrics[0].second / opt.metrics[0].second);
    cases.push_back(opt);
    cases.push_back(ref);
  }

  // A matching TM (distinct sources, near-singleton groups): records how
  // much of the win survives when source grouping cannot help.
  {
    const auto t = topo::jellyfish(64, 6, 4, 1);
    const auto active = flow::pick_active_racks(t, 32, 1);
    const auto tm = flow::longest_matching_tm(t, active);
    const auto inst =
        flow::build_mcf_instance(flow::build_throughput_cache(t), tm);
    std::printf("mcf matching jellyfish64 (%zu commodities):\n",
                inst.commodities.size());
    auto opt = run_solver_case("matching_jf64_eps10",
                               optimized_solver, inst, eps, reps);
    const auto ref =
        run_solver_case("matching_jf64_eps10_reference",
                        flow::reference_max_concurrent_flow, inst, eps, reps);
    opt.add("speedup_vs_reference",
            ref.metrics[0].second / opt.metrics[0].second);
    cases.push_back(opt);
    cases.push_back(ref);
  }

  return bench::write_perf_json(path, "micro_flow", cases) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  if (bench::parse_json_flag(argc, argv, "BENCH_MCF.json", &path)) {
    return run_json_mode(path);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
