// Micro-benchmarks for the fluid-flow engine: Garg-Koenemann solver
// scaling in topology size and approximation parameter.
#include <benchmark/benchmark.h>

#include "flow/throughput.hpp"
#include "flow/tm_generators.hpp"
#include "topo/jellyfish.hpp"

namespace {

using namespace flexnets;

void BM_GargKoenemann(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const double eps = static_cast<double>(state.range(1)) / 100.0;
  const auto t = topo::jellyfish(n, 6, 4, 1);
  const auto active = flow::pick_active_racks(t, n / 2, 1);
  const auto tm = flow::longest_matching_tm(t, active);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow::per_server_throughput(t, tm, {eps}));
  }
  state.SetLabel("n=" + std::to_string(n) + " eps=" + std::to_string(eps));
}
BENCHMARK(BM_GargKoenemann)
    ->Args({16, 10})
    ->Args({32, 10})
    ->Args({64, 10})
    ->Args({32, 5})
    ->Unit(benchmark::kMillisecond);

void BM_LongestMatchingTm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto t = topo::jellyfish(n, 8, 4, 1);
  const auto active = flow::pick_active_racks(t, n, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow::longest_matching_tm(t, active));
  }
}
BENCHMARK(BM_LongestMatchingTm)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

}  // namespace
