// Micro-benchmarks for topology generation and routing-table construction.
#include <benchmark/benchmark.h>

#include "routing/routing_table.hpp"
#include "topo/fat_tree.hpp"
#include "topo/jellyfish.hpp"
#include "topo/slim_fly.hpp"
#include "topo/xpander.hpp"

namespace {

using namespace flexnets;

void BM_FatTree(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(topo::fat_tree(k));
}
BENCHMARK(BM_FatTree)->Arg(8)->Arg(16)->Arg(24);

void BM_Jellyfish(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo::jellyfish(n, 12, 6, ++seed));
  }
}
BENCHMARK(BM_Jellyfish)->Arg(64)->Arg(256)->Arg(512);

void BM_Xpander(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo::xpander(11, 18, 5, ++seed));
  }
}
BENCHMARK(BM_Xpander);

void BM_SlimFly(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(topo::slim_fly(17, 24));
}
BENCHMARK(BM_SlimFly);

void BM_EcmpTableBuild(benchmark::State& state) {
  const auto ft = topo::fat_tree(static_cast<int>(state.range(0)));
  const auto tors = ft.topo.tors();
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::EcmpTable::build(ft.topo.g, tors));
  }
}
BENCHMARK(BM_EcmpTableBuild)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace
