// Micro-benchmarks for the flow-level max-min simulator: events/second as
// concurrency grows, and routing-mode overhead.
#include <benchmark/benchmark.h>

#include "flowsim/flow_sim.hpp"
#include "topo/xpander.hpp"
#include "workload/flow_size.hpp"

namespace {

using namespace flexnets;

std::vector<workload::FlowSpec> make_flows(const topo::Topology& t,
                                           double rate_per_server,
                                           int count) {
  const auto pairs = workload::all_to_all_pairs(t, t.tors());
  const auto sizes = workload::pfabric_web_search();
  return workload::generate_flows(*pairs, *sizes,
                                  rate_per_server * t.num_servers(), count,
                                  7);
}

void BM_FlowSimThroughput(benchmark::State& state) {
  const auto x = topo::xpander(5, 9, 3, 1);  // 54 switches, 162 servers
  const int count = static_cast<int>(state.range(0));
  const auto flows = make_flows(x.topo, 100.0, count);
  std::int64_t done = 0;
  for (auto _ : state) {
    flowsim::FlowSimConfig cfg;
    cfg.routing = flowsim::FlowRouting::kEcmpSampled;
    flowsim::FlowLevelSimulator sim(x.topo, cfg);
    benchmark::DoNotOptimize(sim.run(flows));
    done += count;
  }
  state.SetItemsProcessed(done);
  state.SetLabel("items = flows simulated");
}
BENCHMARK(BM_FlowSimThroughput)->Arg(200)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_FlowSimRoutingModes(benchmark::State& state) {
  const auto x = topo::xpander(5, 9, 3, 1);
  const auto flows = make_flows(x.topo, 100.0, 400);
  const auto mode = static_cast<flowsim::FlowRouting>(state.range(0));
  for (auto _ : state) {
    flowsim::FlowSimConfig cfg;
    cfg.routing = mode;
    flowsim::FlowLevelSimulator sim(x.topo, cfg);
    benchmark::DoNotOptimize(sim.run(flows));
  }
  static const char* const names[] = {"ecmp-sampled", "ecmp-split", "vlb",
                                      "hyb"};
  state.SetLabel(names[state.range(0)]);
}
BENCHMARK(BM_FlowSimRoutingModes)
    ->Arg(static_cast<int>(flexnets::flowsim::FlowRouting::kEcmpSampled))
    ->Arg(static_cast<int>(flexnets::flowsim::FlowRouting::kEcmpSplit))
    ->Arg(static_cast<int>(flexnets::flowsim::FlowRouting::kVlb))
    ->Arg(static_cast<int>(flexnets::flowsim::FlowRouting::kHyb))
    ->Unit(benchmark::kMillisecond);

}  // namespace
