// MPTCP-over-KSP (prior art for routing expanders, paper section 6 intro)
// vs the paper's simple HYB scheme. The paper's motivation: MPTCP+KSP
// performs well but poses deployment challenges; HYB should get comparable
// performance with single-path DCTCP plus an encap/decap trick.
#include <cstdio>

#include "metrics/fct_tracker.hpp"
#include "topo/xpander.hpp"
#include "transport/mptcp.hpp"
#include "util.hpp"
#include "workload/flow_size.hpp"

using namespace flexnets;

namespace {

metrics::FctSummary run_mptcp(const topo::Topology& xp,
                              const workload::PairDistribution& pairs,
                              const workload::FlowSizeDistribution& sizes,
                              double rate_per_server,
                              const core::PacketSimOptions& base,
                              int subflows) {
  core::PacketSimOptions opts = base;
  opts.net.routing.mode = routing::RoutingMode::kKsp;
  opts.net.routing.ksp_k = subflows;
  int active_servers = 0;
  for (const auto r : pairs.active_racks()) {
    active_servers += xp.servers_per_switch[r];
  }
  opts.arrival_rate = rate_per_server * active_servers;
  const int num_flows = std::max(
      1, static_cast<int>(opts.arrival_rate *
                          to_seconds(opts.window_end + opts.arrival_tail)));
  const auto flows = workload::generate_flows(pairs, sizes, opts.arrival_rate,
                                              num_flows, opts.seed);

  sim::PacketNetwork net(xp, opts.net);
  transport::MptcpConfig mcfg;
  mcfg.subflows = subflows;
  transport::MptcpEngine mptcp(mcfg, net.engine());
  net.set_flow_opener([&](const workload::FlowSpec& spec) {
    const auto id = mptcp.open(
        net.host_node(spec.src_server), net.host_node(spec.dst_server),
        net.tor_of_server(spec.src_server), net.tor_of_server(spec.dst_server),
        spec.size);
    mptcp.start(id);
  });
  net.run(flows, opts.hard_stop);

  std::vector<metrics::FlowRecord> records;
  for (std::size_t i = 0; i < mptcp.num_logical(); ++i) {
    const auto& lf = mptcp.logical(static_cast<std::int32_t>(i));
    records.push_back({lf.start_time, lf.completion_time, lf.size});
  }
  return metrics::summarize(records, opts.window_begin, opts.window_end,
                            workload::kShortFlowThreshold);
}

}  // namespace

int main() {
  bench::banner("Ablation: MPTCP-over-KSP vs HYB",
                "prior-art multipath transport vs the paper's simple scheme");

  const bool full = core::repro_full();
  auto topos = bench::section64_topologies(full);
  const auto& xp = topos.xpander;
  const auto sizes = workload::pfabric_web_search();
  const auto base = bench::default_packet_options(full);
  const double rate = 150.0;

  for (const bool permute : {true, false}) {
    std::printf("%s\n", permute ? ">>> Permute(0.5)" : ">>> A2A(1.0)");
    std::unique_ptr<workload::PairDistribution> pairs;
    if (permute) {
      pairs = workload::permutation_pairs(
          xp, workload::random_fraction_racks(xp, 0.5, 5), 21);
    } else {
      pairs = workload::all_to_all_pairs(xp, xp.tors());
    }

    TextTable t({"scheme", "avg_FCT_ms", "p99_short_ms", "long_tput_Gbps"});
    for (const auto mode :
         {routing::RoutingMode::kEcmp, routing::RoutingMode::kHyb}) {
      bench::Scenario s{
          mode == routing::RoutingMode::kEcmp ? "DCTCP + ECMP" : "DCTCP + HYB",
          &xp, mode};
      const auto r = bench::run_point(s, *pairs, *sizes, rate, base.seed, full);
      t.add_row({s.label, TextTable::fmt(r.fct.avg_fct_ms, 3),
                 TextTable::fmt(r.fct.p99_short_fct_ms, 3),
                 TextTable::fmt(r.fct.avg_long_tput_gbps, 3)});
    }
    for (const int subflows : {2, 4}) {
      const auto m = run_mptcp(xp, *pairs, *sizes, rate, base, subflows);
      t.add_row({"MPTCP-KSP x" + std::to_string(subflows),
                 TextTable::fmt(m.avg_fct_ms, 3),
                 TextTable::fmt(m.p99_short_fct_ms, 3),
                 TextTable::fmt(m.avg_long_tput_gbps, 3)});
    }
    t.print();
    std::printf("\n");
  }
  std::printf(
      "Expected (paper section 6): MPTCP over k-shortest paths performs\n"
      "well, but simple HYB reaches comparable territory -- the paper's\n"
      "argument that expander routing does not require multipath transport\n"
      "or k-shortest-path forwarding state.\n");
  return 0;
}
