// Reproduces paper Fig 9: A2A(x) with the pFabric flow-size distribution at
// 167 flow-starts per second per active server, sweeping the fraction of
// active servers. Three panels: average FCT, 99th-percentile short-flow
// FCT, and long-flow throughput, for the full-bandwidth fat-tree vs an
// Xpander at 33% lower cost under ECMP and HYB.
#include <cstdio>

#include "util.hpp"
#include "workload/flow_size.hpp"

using namespace flexnets;

int main() {
  bench::banner("Fig 9", "A2A(x) sweep, pFabric sizes, 167 flows/s/server");

  const bool full = core::repro_full();
  auto topos = bench::section64_topologies(full);
  const auto sizes = workload::pfabric_web_search();

  const std::vector<bench::Scenario> scenarios{
      {"fat-tree", &topos.fat_tree.topo, routing::RoutingMode::kEcmp},
      {"xpander-ECMP", &topos.xpander, routing::RoutingMode::kEcmp},
      {"xpander-HYB", &topos.xpander, routing::RoutingMode::kHyb},
  };

  const std::vector<double> fractions =
      full ? std::vector<double>{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
           : std::vector<double>{0.2, 0.4, 0.6, 0.8, 1.0};

  std::vector<bench::SweepRow> rows;
  for (const double x : fractions) {
    bench::SweepRow row;
    row.x = x;
    for (const auto& s : scenarios) {
      // Paper: for the fat-tree the first x-fraction of racks is active;
      // for Xpander a random x-fraction.
      const auto active =
          s.topo == &topos.fat_tree.topo
              ? workload::first_fraction_racks(*s.topo, x)
              : workload::random_fraction_racks(*s.topo, x, /*seed=*/5);
      const auto pairs = workload::all_to_all_pairs(*s.topo, active);
      row.results.push_back(
          bench::run_point(s, *pairs, *sizes, 167.0, /*seed=*/13, full));
    }
    rows.push_back(std::move(row));
  }
  bench::print_three_panels("fraction_active", scenarios, rows);
  std::printf(
      "Expected shape (paper): for small-to-moderate active fractions both\n"
      "Xpander variants match the full-bandwidth fat-tree; at large x the\n"
      "cheaper Xpander's average FCT/throughput degrade while short-flow\n"
      "tail FCT stays competitive across nearly the whole range. ECMP\n"
      "suffices for this uniform workload.\n");
  return 0;
}
