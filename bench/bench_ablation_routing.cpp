// Routing-scheme shootout (the paper's section 7.1 design space): all six
// source-routing modes plus the least-queue switch policy, on the two
// workloads that discriminate between them:
//   - Permute(0.5): rack-consolidated flows (ECMP's worst case), and
//   - A2A(1.0): uniform load (VLB's worst case).
#include <cstdio>

#include "util.hpp"
#include "workload/flow_size.hpp"

using namespace flexnets;

namespace {

struct Mode {
  const char* label;
  routing::RoutingMode mode;
  routing::SwitchPolicy policy = routing::SwitchPolicy::kHash;
};

core::PacketResult run(const topo::Topology& xp, const Mode& m,
                       const workload::PairDistribution& pairs, bool full,
                       double rate_per_server) {
  core::PacketSimOptions opts = bench::default_packet_options(full);
  const auto sizes = workload::pfabric_web_search();
  int active_servers = 0;
  for (const auto r : pairs.active_racks()) {
    active_servers += xp.servers_per_switch[r];
  }
  opts.arrival_rate = rate_per_server * active_servers;
  opts.net.routing.mode = m.mode;
  opts.net.routing.switch_policy = m.policy;
  opts.seed = 71;
  return core::run_packet_experiment(xp, pairs, *sizes, opts);
}

}  // namespace

int main() {
  bench::banner("Ablation: routing schemes",
                "ECMP / VLB / HYB / HYB-ECN / KSP / SPRAY / least-queue");

  const bool full = core::repro_full();
  auto topos = bench::section64_topologies(full);
  const auto& xp = topos.xpander;
  const double rate = 150.0;

  const Mode modes[] = {
      {"ECMP", routing::RoutingMode::kEcmp},
      {"VLB", routing::RoutingMode::kVlb},
      {"HYB (Q=100KB)", routing::RoutingMode::kHyb},
      {"HYB-ECN", routing::RoutingMode::kHybEcn},
      {"KSP (k=4)", routing::RoutingMode::kKsp},
      {"SPRAY", routing::RoutingMode::kSpray},
      {"ECMP+leastqueue", routing::RoutingMode::kEcmp,
       routing::SwitchPolicy::kLeastQueue},
  };

  for (const bool permute : {true, false}) {
    std::printf("%s\n", permute
                            ? ">>> Permute(0.5): rack-consolidated hotspots"
                            : ">>> A2A(1.0): uniform load");
    std::unique_ptr<workload::PairDistribution> pairs;
    if (permute) {
      pairs = workload::permutation_pairs(
          xp, workload::random_fraction_racks(xp, 0.5, 5), 21);
    } else {
      pairs = workload::all_to_all_pairs(xp, xp.tors());
    }
    TextTable t({"scheme", "avg_FCT_ms", "p99_short_ms", "long_tput_Gbps",
                 "health"});
    for (const Mode& m : modes) {
      const auto r = run(xp, m, *pairs, full, rate);
      t.add_row({m.label, TextTable::fmt(r.fct.avg_fct_ms, 3),
                 TextTable::fmt(r.fct.p99_short_fct_ms, 3),
                 TextTable::fmt(r.fct.avg_long_tput_gbps, 3),
                 bench::health_note(r)});
    }
    t.print();
    std::printf("\n");
  }
  std::printf(
      "Expected: on Permute, ECMP is worst and anything that spreads\n"
      "(VLB/HYB/KSP/least-queue) wins; on uniform A2A, VLB pays its 2x\n"
      "bandwidth tax while shortest-path schemes (ECMP/KSP/spray) lead.\n"
      "HYB is the only scheme near the front on BOTH -- the paper's point.\n");
  return 0;
}
