// Machine-readable perf records for the micro-benchmarks.
//
// `micro_flow --json [path]` / `micro_sim --json [path]` run a fixed set
// of reference cases and write one JSON document (default BENCH_MCF.json /
// BENCH_SIM.json in the working directory): a flat list of cases, each a
// name plus numeric metrics (ns_per_op, dijkstra_calls, lambda, ...).
// tools/ci.sh runs both as a smoke step and validates the schema — keys
// present, values finite — without gating on absolute timings, so the perf
// trajectory is recorded in git rather than enforced by flaky thresholds.
//
// Wall-clock timing lives here, in bench/, on purpose: the engines under
// src/ are banned from reading wall time (flexnets_analyze, `wall-clock`).
#pragma once

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

namespace flexnets::bench {

struct PerfCase {
  std::string name;
  // Insertion-ordered so the emitted JSON is byte-stable run to run.
  std::vector<std::pair<std::string, double>> metrics;

  void add(const std::string& key, double value) {
    metrics.emplace_back(key, value);
  }
};

// Writes {"bench": ..., "schema_version": 1, "peak_rss_kb": ...,
// "cases": [...]} to `path`. The root peak_rss_kb is sampled at write time,
// so every --json bench records its memory budget alongside ns/op without
// each bench doing anything. Returns false (after printing to stderr) if
// the file cannot be written.
bool write_perf_json(const std::string& path, const std::string& bench_name,
                     const std::vector<PerfCase>& cases);

// Merges `cases` into an existing perf JSON written by write_perf_json:
// existing cases with the same names are replaced, everything else is
// preserved, and the root peak_rss_kb is refreshed. Falls back to a fresh
// write_perf_json when the file is missing or not in the expected shape.
// This is how bench_hyperscale shares BENCH_MCF.json with micro_flow.
bool append_perf_json(const std::string& path, const std::string& bench_name,
                      const std::vector<PerfCase>& cases);

// Peak resident set size of this process in kilobytes (VmHWM from
// /proc/self/status); 0.0 where the proc interface is unavailable.
double peak_rss_kb();

// Monotonic wall time in nanoseconds, for timing benchmark regions.
double monotonic_ns();

// Median-of-`reps` wall time of fn(), in nanoseconds. The median (not the
// mean) so one scheduler hiccup cannot distort a recorded trajectory point.
template <typename F>
double time_median_ns(int reps, F&& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const double begin = monotonic_ns();
    fn();
    samples.push_back(monotonic_ns() - begin);
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

// True if argv contains "--json"; `out_path` receives the argument that
// follows it (or `default_path` when none is given).
bool parse_json_flag(int argc, char** argv, const std::string& default_path,
                     std::string* out_path);

}  // namespace flexnets::bench
