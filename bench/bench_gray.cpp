// Cost-equalized resilience showdown under gray failures: fat-tree vs
// Xpander vs Jellyfish (the expanders built from the same switching
// equipment, hosting at least as many servers) swept across a
// (loss_prob x detect_threshold x flap_period) grid. Every cell injects
// the same gray cocktail — two lossy links, one degraded link, one
// flapping link, plus one hard link-down so the per-class drop breakdown
// exercises all three classes — and reports p50/p99 FCT inflation against
// the same topology's clean baseline, the drop breakdown, and how much of
// the gray damage the detector found and routed around.
//
// Modes / flags:
//   (default)            human-oriented showdown tables + digest line
//   --digest-check       serial vs PDES (--threads, else {2, 4}) digest
//                        bit-equality on gray plans (jellyfish) and mixed
//                        gray+binary plans (fat-tree); exits nonzero on
//                        any divergence — the CI gray determinism gate
//   --json [path]        append the gray_* cases into BENCH_SIM.json
//                        (append_perf_json: micro_sim's cases survive)
//   --journal/--resume/--workers/... the shared resilient-sweep flags
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/table.hpp"
#include "fault/fault_plan.hpp"
#include "metrics/degradation.hpp"
#include "perf_json.hpp"
#include "sim/network.hpp"
#include "sim/pdes/runner.hpp"
#include "topo/fat_tree.hpp"
#include "topo/jellyfish.hpp"
#include "topo/xpander.hpp"
#include "util.hpp"
#include "workload/arrivals.hpp"
#include "workload/flow_size.hpp"

using namespace flexnets;

namespace {

constexpr TimeNs kHorizon = 80 * kMillisecond;

// Mid-size flows in three staggered waves: unlike the saturating timeline
// benches, FCT inflation needs flows that *complete*, so every wave fits
// comfortably inside the horizon even with half the gray cocktail active.
std::vector<workload::FlowSpec> showdown_flows(const topo::Topology& t) {
  std::vector<workload::FlowSpec> flows;
  const int n = t.num_servers();
  for (int s = 0; s < n; ++s) {
    flows.push_back({s * kMicrosecond, s, (s + n / 2) % n, 256 * kKB});
    flows.push_back(
        {1 * kMillisecond + s * kMicrosecond, (s + n / 3) % n, s, 64 * kKB});
    flows.push_back(
        {4 * kMillisecond + s * kMicrosecond, s, (s + n / 5) % n, 128 * kKB});
  }
  return flows;
}

// The gray cocktail every grid cell injects (loss_prob and flap_period are
// the swept axes). One hard link failure rides along so expelled /
// transient-blackhole drops appear next to the gray losses in the
// breakdown; everything heals by window_end + repair_after, leaving a
// clean tail for the late flows.
fault::FaultPlan gray_plan(const topo::Topology& t, double loss_prob,
                           TimeNs flap_period) {
  fault::RandomFaultOptions opt;
  opt.link_failures = 1;
  opt.switch_failures = 0;
  opt.lossy_links = 2;
  opt.loss_prob = loss_prob;
  opt.degraded_links = 1;
  opt.degrade_fraction = 0.5;
  opt.flapping_links = 1;
  opt.flap_period = flap_period;
  opt.flap_duty = 0.5;
  opt.window_begin = 2 * kMillisecond;
  opt.window_end = 5 * kMillisecond;
  opt.repair_after = 10 * kMillisecond;
  return fault::FaultPlan::random(t, opt, 99);
}

sim::NetworkConfig net_config(const fault::FaultPlan* plan,
                              int detect_threshold) {
  sim::NetworkConfig cfg;
  cfg.seed = 12;
  cfg.faults = plan;
  cfg.control_plane_delay = 500 * kMicrosecond;
  cfg.detector.detect_threshold = detect_threshold;
  return cfg;
}

metrics::FctSummary summarize_flows(const sim::PacketNetwork& net,
                                    const std::vector<workload::FlowSpec>& fl) {
  std::vector<metrics::FlowRecord> records;
  records.reserve(fl.size());
  for (std::size_t i = 0; i < fl.size(); ++i) {
    const auto& f = net.engine().flow(static_cast<std::int32_t>(i));
    if (f.start_time >= 0) {
      records.push_back({f.start_time, f.completion_time, f.size});
    } else {
      records.push_back({fl[i].start, -1, fl[i].size});
    }
  }
  return metrics::summarize(records, 0, kHorizon,
                            workload::kShortFlowThreshold);
}

struct GrayRun {
  metrics::FctSummary fct;
  sim::PacketNetwork::FaultStats stats;
  std::uint64_t digest = 0;
};

GrayRun run_one(const topo::Topology& t, const fault::FaultPlan* plan,
                int detect_threshold) {
  sim::PacketNetwork net(t, net_config(plan, detect_threshold));
  const auto flows = showdown_flows(t);
  net.run(flows, kHorizon);
  return {summarize_flows(net, flows), net.fault_stats(),
          net.simulator().event_digest()};
}

// --------------------------------------------------------------------------
// --digest-check: the CI gray determinism gate. Serial vs PDES event-digest
// bit-equality on a gray-only jellyfish plan and a mixed gray+binary
// fat-tree plan, at each requested thread count.

int digest_check(int threads_flag) {
  CheckPolicyScope policy(CheckPolicy::kThrow);
  AuditScope audit(true);

  const auto ft = topo::fat_tree(4);
  const auto jf = topo::jellyfish(16, 3, 2, 1);
  struct Entry {
    std::string label;
    const topo::Topology* topo;
  };
  const std::vector<Entry> entries = {{"fattree_mixed", &ft.topo},
                                      {"jellyfish_gray", &jf}};
  std::vector<int> thread_counts;
  if (threads_flag > 1) {
    thread_counts.push_back(threads_flag);
  } else {
    thread_counts = {2, 4};
  }

  bool ok = true;
  for (const auto& e : entries) {
    // The jellyfish entry drops the hard failure so the plan is purely
    // gray (no structural event until the restores); the fat-tree keeps
    // the full cocktail so kFault/kRepair/kDetect interleave.
    auto plan = gray_plan(*e.topo, 0.02, 1 * kMillisecond);
    if (e.label == "jellyfish_gray") {
      fault::RandomFaultOptions opt;
      opt.link_failures = 0;
      opt.switch_failures = 0;
      opt.lossy_links = 2;
      opt.loss_prob = 0.02;
      opt.degraded_links = 1;
      opt.degrade_fraction = 0.5;
      opt.flapping_links = 1;
      opt.flap_period = 1 * kMillisecond;
      opt.flap_duty = 0.5;
      opt.window_begin = 2 * kMillisecond;
      opt.window_end = 5 * kMillisecond;
      opt.repair_after = 10 * kMillisecond;
      plan = fault::FaultPlan::random(*e.topo, opt, 99);
    }
    const auto flows = showdown_flows(*e.topo);

    sim::PacketNetwork serial(*e.topo, net_config(&plan, 32));
    serial.run(flows, kHorizon);
    const std::uint64_t ref = serial.simulator().event_digest();
    FLEXNETS_CHECK(serial.fault_stats().gray_loss_drops > 0,
                   "digest-check plan produced no gray losses for ",
                   e.label);
    std::printf("digest gray_%s_serial: %016llx\n", e.label.c_str(),
                static_cast<unsigned long long>(ref));

    for (const int threads : thread_counts) {
      sim::PacketNetwork net(*e.topo, net_config(&plan, 32));
      sim::pdes::RunnerConfig pcfg;
      pcfg.threads = threads;
      const auto stats = sim::pdes::run_parallel(net, flows, pcfg, kHorizon);
      std::printf("digest gray_%s_t%d: %016llx\n", e.label.c_str(), threads,
                  static_cast<unsigned long long>(stats.event_digest));
      if (stats.event_digest != ref) {
        std::printf("FAIL: %s PDES digest (t=%d) diverged from serial\n",
                    e.label.c_str(), threads);
        ok = false;
      }
    }
  }
  std::printf("%s\n", ok ? "PASS: gray digests bit-identical serial vs PDES"
                         : "FAIL: see messages above");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Gray showdown",
                "cost-equalized resilience under gray failures");
  const int threads = bench::parse_threads(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--digest-check") == 0) {
      return digest_check(threads);
    }
  }
  const auto flags = bench::parse_resilient_flags(argc, argv);
  const auto shard = bench::parse_shard_flags(argc, argv);
  std::string json_path;
  const bool json =
      bench::parse_json_flag(argc, argv, "BENCH_SIM.json", &json_path);
  bench::ResilientState state;
  // Workers never journal: the coordinator alone writes the merged file.
  if (shard.worker_grid.empty()) bench::init_resilient_state(flags, &state);
  const bool full = core::repro_full();

  // Same-equipment contenders (the scaled analogue of the paper's
  // cost-equalized comparison): the expanders reuse the fat-tree's switch
  // budget and host at least as many servers on it.
  const auto ft = topo::fat_tree(full ? 6 : 4);
  const auto xp = full ? topo::xpander(5, 9, 2, 1) : topo::xpander(3, 4, 2, 1);
  const auto jf = topo::jellyfish(full ? 36 : 16, 3, 2, 1);
  struct Entry {
    std::string label;
    const topo::Topology* topo;
  };
  const std::vector<Entry> entries = {
      {"fat_tree", &ft.topo}, {"xpander", &xp.topo}, {"jellyfish", &jf}};

  // Axes chosen so detection actually bites somewhere in the grid: at the
  // low threshold a lossy link's hash drops cross it and the repair
  // excludes the link; at the high threshold only the flap (detected at
  // its first down transition) is ever noticed, so the lossy links keep
  // bleeding — the contrast IS the experiment.
  const std::vector<double> loss_probs =
      full ? std::vector<double>{0.005, 0.01, 0.05}
           : std::vector<double>{0.01, 0.05};
  const std::vector<int> thresholds =
      full ? std::vector<int>{8, 32, 128} : std::vector<int>{8, 128};
  const std::vector<TimeNs> flap_periods =
      full ? std::vector<TimeNs>{250 * kMicrosecond, 1 * kMillisecond,
                                 4 * kMillisecond}
           : std::vector<TimeNs>{500 * kMicrosecond, 2 * kMillisecond};

  const std::size_t cells =
      loss_probs.size() * thresholds.size() * flap_periods.size();
  const std::size_t n = entries.size() * cells;

  // Clean baselines, one per topology. Computed before the grid so worker
  // subprocesses (which re-execute main up to the grid call) share them;
  // fn(i) still depends only on i.
  AuditScope audit(true);
  std::vector<metrics::FctSummary> baselines;
  for (const auto& e : entries) {
    baselines.push_back(run_one(*e.topo, nullptr, 64).fct);
  }

  const double grid_begin_ns = bench::monotonic_ns();
  const auto records = bench::run_grid_resilient_sharded(
      argc, argv, n, threads, "gray", &state, flags, shard,
      [&](std::size_t i) {
        const std::size_t topo_i = i / cells;
        std::size_t c = i % cells;
        const double lp = loss_probs[c / (thresholds.size() *
                                          flap_periods.size())];
        c %= thresholds.size() * flap_periods.size();
        const int thr = thresholds[c / flap_periods.size()];
        const TimeNs fp = flap_periods[c % flap_periods.size()];

        const auto& t = *entries[topo_i].topo;
        const auto plan = gray_plan(t, lp, fp);
        const auto r = run_one(t, &plan, thr);
        const auto infl =
            metrics::fct_inflation_summary(baselines[topo_i], r.fct);
        const metrics::DropBreakdown drops{
            r.stats.blackhole_drops, r.stats.expelled_packets,
            r.stats.gray_loss_drops};
        return std::vector<std::pair<std::string, double>>{
            {"loss_prob", lp},
            {"detect_threshold", static_cast<double>(thr)},
            {"flap_period_us", static_cast<double>(fp) / kMicrosecond},
            {"fct_infl_mean", infl.mean},
            {"fct_infl_p50", infl.p50},
            {"fct_infl_p99", infl.p99},
            {"gray_loss_drops", static_cast<double>(r.stats.gray_loss_drops)},
            {"blackhole_drops", static_cast<double>(r.stats.blackhole_drops)},
            {"expelled_packets",
             static_cast<double>(r.stats.expelled_packets)},
            {"gray_drop_fraction", drops.gray_fraction()},
            {"detections", static_cast<double>(r.stats.detections)},
            {"gray_links_excluded",
             static_cast<double>(r.stats.gray_links_excluded)},
            {"post_repair_blackholes",
             static_cast<double>(r.stats.post_repair_blackholes)},
            {"incomplete_flows",
             static_cast<double>(r.fct.incomplete_flows)}};
      });

  bool ok = true;
  TextTable table({"topology", "loss", "thresh", "flap_us", "infl_p50",
                   "infl_p99", "gray_drops", "detected", "excluded",
                   "post_bh"});
  for (std::size_t i = 0; i < n; ++i) {
    const auto& r = records[i];
    table.add_row({entries[i / cells].label, TextTable::fmt(r.value("loss_prob"), 3),
                   std::to_string(static_cast<int>(r.value("detect_threshold"))),
                   std::to_string(static_cast<long long>(
                       r.value("flap_period_us"))),
                   TextTable::fmt(r.value("fct_infl_p50"), 2),
                   TextTable::fmt(r.value("fct_infl_p99"), 2),
                   std::to_string(static_cast<long long>(
                       r.value("gray_loss_drops"))),
                   std::to_string(
                       static_cast<long long>(r.value("detections"))),
                   std::to_string(static_cast<long long>(
                       r.value("gray_links_excluded"))),
                   std::to_string(static_cast<long long>(
                       r.value("post_repair_blackholes")))});
    if (r.value("post_repair_blackholes") != 0.0) {
      std::printf("FAIL: %s cell %zu dropped packets as blackholes after the "
                  "final repair\n",
                  entries[i / cells].label.c_str(), i % cells);
      ok = false;
    }
  }
  table.print();
  std::printf(
      "\nExpected: p99 inflation grows with loss_prob and shrinks as the\n"
      "detector gets more aggressive (lower threshold -> earlier reroute);\n"
      "the expanders' path diversity keeps their tail flatter than the\n"
      "fat-tree's at equal cost. Gray losses dominate the drop breakdown\n"
      "(the hard failure contributes the expelled class), and after the\n"
      "final repair the audit proves zero blackholes remain.\n\n");
  bench::print_digest_line("gray", bench::grid_digest(records),
                           records.size(), bench::count_failed(records));

  if (json) {
    // Wall time is stamped at emission, never journaled: the grid digest
    // must stay bit-reproducible across runs and machines.
    const double ns_per_cell =
        (bench::monotonic_ns() - grid_begin_ns) / static_cast<double>(n);
    std::vector<bench::PerfCase> cases;
    for (std::size_t i = 0; i < n; ++i) {
      bench::PerfCase c;
      c.name = "gray_" + entries[i / cells].label + "_c" +
               std::to_string(i % cells);
      c.add("ns_per_op", ns_per_cell);
      for (const auto& [key, value] : records[i].values) {
        c.add(key, value);
      }
      cases.push_back(std::move(c));
    }
    if (!bench::append_perf_json(json_path, "micro_sim", cases)) ok = false;
  }
  return ok ? 0 : 1;
}
