// Reproduces paper Fig 6(a): Jellyfish built with 80% / 50% / 40% of a full
// fat-tree's switches (same radix, same server count) still provides
// near-full bandwidth when a minority of servers participate.
// Default scale: k=8 (80 switches, 128 servers). REPRO_FULL=1: the paper's
// k=20 (500 switches, 2000 servers).
#include <cstdio>

#include "core/fluid_runner.hpp"
#include "topo/fat_tree.hpp"
#include "topo/jellyfish.hpp"
#include "util.hpp"

using namespace flexnets;

int main(int argc, char** argv) {
  bench::banner("Fig 6(a)",
                "Jellyfish at 80/50/40% of a full fat-tree's switches");
  const int threads = bench::parse_threads(argc, argv);
  const auto flags = bench::parse_resilient_flags(argc, argv);
  bench::ResilientState state;
  bench::init_resilient_state(flags, &state);

  const bool full = core::repro_full();
  const int k = full ? 20 : 8;
  const auto ft = topo::fat_tree(k);
  const int servers = ft.topo.num_servers();
  const int switches = ft.topo.num_switches();
  std::printf("baseline: full fat-tree k=%d (%d switches, %d servers)\n\n", k,
              switches, servers);

  core::FluidSweepOptions opts;
  opts.eps = full ? 0.12 : 0.07;

  opts.threads = threads;
  const std::vector<double> fracs = {0.8, 0.5, 0.4};
  struct Cell {
    std::vector<core::FluidPointRecord> sweep;
    std::string label;
    std::string info;
  };
  const auto cells = bench::run_grid(fracs.size(), threads, [&](std::size_t i) {
    const double frac = fracs[i];
    const int n = static_cast<int>(frac * switches);
    const auto jf = topo::jellyfish_same_equipment(n, k, servers, 1);
    Cell c;
    c.sweep = bench::sweep_with_flags(
        jf, opts, "fig6a/" + TextTable::fmt(100 * frac, 0) + "pct", &state,
        flags.point_sleep_ms);
    c.label = TextTable::fmt(100 * frac, 0) + "%_fat_switches";
    c.info = "  " + jf.name + ": " + std::to_string(n) +
             " switches of radix " + std::to_string(k) + ", " +
             std::to_string(servers) + " servers";
    return c;
  });
  std::vector<std::vector<core::FluidPointRecord>> series;
  std::vector<std::string> labels;
  for (const auto& c : cells) {
    series.push_back(c.sweep);
    labels.push_back(c.label);
    std::printf("%s\n", c.info.c_str());
  }
  std::printf("\n");

  TextTable t({"fraction_x", labels[0], labels[1], labels[2]});
  for (std::size_t i = 0; i < opts.fractions.size(); ++i) {
    t.add_row({opts.fractions[i], series[0][i].point.throughput,
               series[1][i].point.throughput, series[2][i].point.throughput},
              3);
  }
  t.print();
  std::printf(
      "\nExpected shape (paper): with 50%% of the fat-tree's switches,\n"
      "Jellyfish still gives ~full bandwidth when <40%% of servers are\n"
      "active; the full fat-tree itself would be a flat 1.0 line.\n\n");
  for (std::size_t i = 0; i < series.size(); ++i) {
    bench::print_digest_line("fig6a/" + labels[i],
                             core::fluid_sweep_digest(series[i]),
                             series[i].size(),
                             bench::count_failed(series[i]));
  }
  return 0;
}
