// Live fault injection: fail links (and, where the topology has spine
// switches, a switch) DURING a packet simulation, let the control plane
// repair routing after a fixed delay, and plot delivered throughput over
// time. The curve should dip at each failure and reconverge after the
// repair; once reconverged there must be no blackhole drops, and the
// whole faulted run must stay bit-deterministic across same-seed repeats.
//
// All three topologies (fat-tree, Xpander, Jellyfish) see a fault plan
// drawn from the same distribution (same options, same seed). The
// expanders host servers on every switch, so their plans contain only
// link failures; the fat-tree also loses an aggregation/core switch.
#include <cstdio>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/table.hpp"
#include "fault/fault_plan.hpp"
#include "metrics/degradation.hpp"
#include "sim/network.hpp"
#include "topo/fat_tree.hpp"
#include "topo/jellyfish.hpp"
#include "topo/xpander.hpp"
#include "util.hpp"
#include "workload/arrivals.hpp"

using namespace flexnets;

namespace {

struct LiveRun {
  std::vector<metrics::ThroughputTimeline::Bin> series;
  sim::PacketNetwork::FaultStats stats;
  std::uint64_t digest = 0;
};

// Saturating long flows: each server sends to three servers spread across
// the network (cross-rack at these scales). Enough multiplexing that ECMP
// loads most links, so the baseline is capacity-limited and flat -- which
// makes the failure dip and the reconvergence visible in 1ms bins.
std::vector<workload::FlowSpec> long_flows(const topo::Topology& t) {
  const int n = t.num_servers();
  std::vector<workload::FlowSpec> flows;
  for (int s = 0; s < n; ++s) {
    for (const int offset : {n / 2, n / 3, n / 5}) {
      flows.push_back({s * kMicrosecond, s, (s + offset) % n, 1000 * kMB});
    }
  }
  return flows;
}

LiveRun run_live(const topo::Topology& t, const fault::FaultPlan& plan,
                 TimeNs delay, TimeNs horizon) {
  sim::NetworkConfig cfg;
  cfg.faults = &plan;
  cfg.control_plane_delay = delay;
  cfg.seed = 12;
  metrics::ThroughputTimeline timeline(1 * kMillisecond);
  sim::PacketNetwork net(t, cfg);
  net.set_timeline(&timeline);
  net.run(long_flows(t), horizon);
  return {timeline.series(horizon), net.fault_stats(),
          net.simulator().event_digest()};
}

}  // namespace

int main() {
  bench::banner("Live failures",
                "delivered throughput vs time under in-simulation faults");
  const bool full = core::repro_full();

  // Failure schedule: every victim goes down somewhere in the window and
  // comes back `repair_after` later; routing repairs `delay` after every
  // transition. Chosen so the scaled run still has clean pre-fault,
  // faulted, and post-recovery phases in a ~30ms horizon.
  // At paper scale the topologies have enough spare paths that two lost
  // links vanish into measurement noise; fail more so the dip is visible.
  fault::RandomFaultOptions opt;
  opt.link_failures = full ? 10 : 2;
  opt.switch_failures = 1;
  opt.window_begin = 8 * kMillisecond;
  opt.window_end = (full ? 16 : 12) * kMillisecond;
  opt.repair_after = 10 * kMillisecond;
  const TimeNs delay = 1 * kMillisecond;
  const TimeNs horizon = (full ? 36 : 30) * kMillisecond;

  const auto ft = topo::fat_tree(full ? 6 : 4);
  // Full scale bumps the degree too: the degree-3 lift-9 instance of seed 1
  // happens to be disconnected (random lifts are only usually connected).
  const auto xp = full ? topo::xpander(5, 9, 2, 1) : topo::xpander(3, 4, 2, 1);
  const auto jf = topo::jellyfish(full ? 36 : 16, 3, 2, 1);
  struct Entry {
    std::string label;
    const topo::Topology* topo;
  };
  const std::vector<Entry> entries = {
      {"fat_tree", &ft.topo}, {"xpander", &xp.topo}, {"jellyfish", &jf}};

  // Audit mode: engines accumulate their event digests and the repaired
  // tables are mechanically checked to never cross a dead link or switch.
  AuditScope audit(true);

  std::vector<fault::FaultPlan> plans;
  std::vector<LiveRun> runs;
  bool ok = true;
  for (const auto& e : entries) {
    plans.push_back(fault::FaultPlan::random(*e.topo, opt, 99));
    const auto& plan = plans.back();
    runs.push_back(run_live(*e.topo, plan, delay, horizon));
    const auto repeat = run_live(*e.topo, plan, delay, horizon);
    if (repeat.digest != runs.back().digest) {
      std::printf("FAIL: %s same-seed faulted runs diverged\n",
                  e.label.c_str());
      ok = false;
    }
  }

  TextTable curve({"t_ms", entries[0].label + "_gbps",
                   entries[1].label + "_gbps", entries[2].label + "_gbps"});
  const auto bins = runs[0].series.size();
  for (std::size_t b = 0; b < bins; ++b) {
    curve.add_row({std::to_string(runs[0].series[b].begin / kMillisecond),
                   TextTable::fmt(runs[0].series[b].gbps, 2),
                   TextTable::fmt(runs[1].series[b].gbps, 2),
                   TextTable::fmt(runs[2].series[b].gbps, 2)});
  }
  curve.print();

  std::printf("\n");
  TextTable sum({"topology", "faults", "repairs", "pre_gbps", "dip_gbps",
                 "post_gbps", "blackholes", "post_repair_bh", "expelled"});
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& plan = plans[i];
    const auto& r = runs[i];
    // Phases: [2ms, first fault), [first fault, last repair), and
    // [last repair + settle, horizon). The last transition repairs at
    // plan.last_time() + delay; one extra bin lets DCTCP ramp back up.
    const TimeNs settle = plan.last_time() + delay + 2 * kMillisecond;
    const double pre = metrics::mean_gbps(r.series, 2 * kMillisecond,
                                          plan.first_time());
    const double dip = metrics::min_gbps(r.series, plan.first_time(),
                                         plan.last_time() + delay);
    const double post = metrics::mean_gbps(r.series, settle, horizon);
    sum.add_row({entries[i].label,
                 std::to_string(plan.events().size() / 2),
                 std::to_string(r.stats.repairs), TextTable::fmt(pre, 2),
                 TextTable::fmt(dip, 2), TextTable::fmt(post, 2),
                 std::to_string(r.stats.blackhole_drops),
                 std::to_string(r.stats.post_repair_blackholes),
                 std::to_string(r.stats.expelled_packets)});
    if (!(dip < pre)) {
      std::printf("FAIL: %s shows no throughput dip during faults\n",
                  entries[i].label.c_str());
      ok = false;
    }
    if (!(post > dip) || post < 0.8 * pre) {
      std::printf("FAIL: %s did not reconverge (pre=%.2f dip=%.2f post=%.2f)\n",
                  entries[i].label.c_str(), pre, dip, post);
      ok = false;
    }
    if (r.stats.post_repair_blackholes != 0) {
      std::printf("FAIL: %s dropped %llu packets as blackholes after repair\n",
                  entries[i].label.c_str(),
                  static_cast<unsigned long long>(
                      r.stats.post_repair_blackholes));
      ok = false;
    }
  }
  sum.print();

  std::printf(
      "\nExpected: throughput dips at each failure, reconverges within the\n"
      "1ms control-plane delay (plus DCTCP ramp-up) of the repair, and\n"
      "returns to the pre-fault level once every victim recovers. Losses\n"
      "during the outage are expelled/transient-blackhole packets; after\n"
      "the final repair the audit proves zero blackholes remain.\n");
  std::printf("%s\n", ok ? "PASS: all live-failure acceptance checks hold"
                         : "FAIL: see messages above");
  return ok ? 0 : 1;
}
