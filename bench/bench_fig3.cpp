// Reproduces paper Fig 3 (as structure statistics): the Xpander with 486
// 24-port switches supporting 3402 servers, organized as 6 pods of 3
// meta-nodes, and its cabling/cost profile vs a k=24 fat-tree.
#include <cstdio>

#include "cost/cost_model.hpp"
#include "graph/algorithms.hpp"
#include "graph/spectral.hpp"
#include "topo/fat_tree.hpp"
#include "topo/xpander.hpp"
#include "util.hpp"

using namespace flexnets;

int main() {
  bench::banner("Fig 3", "Xpander structure: 486 switches, 3402 servers, pods");

  const auto x = topo::xpander(17, 27, 7, 1);
  const auto ft = topo::fat_tree(24);

  TextTable t({"property", "xpander", "fat-tree k=24"});
  t.add_row({"switches", std::to_string(x.topo.num_switches()),
             std::to_string(ft.topo.num_switches())});
  t.add_row({"servers", std::to_string(x.topo.num_servers()),
             std::to_string(ft.topo.num_servers())});
  t.add_row({"network links", std::to_string(x.topo.num_network_links()),
             std::to_string(ft.topo.num_network_links())});
  t.add_row({"network cost ($)",
             TextTable::fmt(cost::network_cost(x.topo), 0),
             TextTable::fmt(cost::network_cost(ft.topo), 0)});
  t.add_row({"switch-graph diameter",
             std::to_string(graph::diameter(x.topo.g)),
             std::to_string(graph::diameter(ft.topo.g))});
  t.add_row({"mean switch distance",
             TextTable::fmt(graph::mean_distance(x.topo.g), 3),
             TextTable::fmt(graph::mean_distance(ft.topo.g), 3)});
  t.print();

  // Pod / meta-node organization: 18 meta-nodes of 27 switches, grouped
  // into 6 pods of 3 meta-nodes (as drawn in the figure).
  std::printf("\nmeta-nodes: %d (one per lift group, %d switches each)\n",
              x.num_meta_nodes(), x.lift);
  std::printf("pods: 6 x 3 meta-nodes = %d switches/pod\n", 3 * x.lift);

  // Cable aggregation: links between a meta-node pair form one bundle.
  const int bundles = x.num_meta_nodes() * (x.num_meta_nodes() - 1) / 2;
  std::printf(
      "cable bundles: %d (one %d-cable bundle per meta-node pair;\n"
      "bundling cuts fiber capex+opex by ~40%% per Jupiter-rising [29])\n",
      bundles, x.lift);

  const double gap = graph::second_eigenvalue(x.topo.g, 300, 7);
  std::printf("\nexpansion: lambda2 = %.2f vs Ramanujan bound 2*sqrt(d-1) = %.2f\n",
              gap, graph::ramanujan_bound(x.network_degree));
  std::printf(
      "cost: the Xpander above costs %.0f%% of the full k=24 fat-tree while\n"
      "hosting %.1fx the servers.\n",
      100.0 * cost::network_cost(x.topo) / cost::network_cost(ft.topo),
      static_cast<double>(x.topo.num_servers()) / ft.topo.num_servers());
  return 0;
}
