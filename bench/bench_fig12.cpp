// Reproduces paper Fig 12: A2A(0.31) with the Pareto-HULL flow-size
// distribution (mostly tiny flows): 99th-percentile short-flow FCT. With
// small flows, RTT dominates bandwidth; Xpander's shorter paths give it
// LOWER tail latency than the full-bandwidth fat-tree.
#include <cstdio>

#include "util.hpp"
#include "workload/flow_size.hpp"

using namespace flexnets;

int main() {
  bench::banner("Fig 12",
                "A2A(0.31), Pareto-HULL sizes: short-flow tail FCT (us)");

  const bool full = core::repro_full();
  auto topos = bench::section64_topologies(full);
  const auto sizes = workload::pareto_hull();

  const std::vector<bench::Scenario> scenarios{
      {"fat-tree", &topos.fat_tree.topo, routing::RoutingMode::kEcmp},
      {"xpander-ECMP", &topos.xpander, routing::RoutingMode::kEcmp},
      {"xpander-HYB", &topos.xpander, routing::RoutingMode::kHyb},
  };

  // Mean flow ~100 KB -> much higher arrival rates than the pFabric
  // experiments (paper sweeps to 3M flow-starts/s network-wide at 1024
  // servers ~ 9.4K/s per active server).
  const double x = 0.31;
  const std::vector<double> per_server =
      full ? std::vector<double>{1500, 3000, 4500, 6000, 7500, 9000}
           : std::vector<double>{1000, 2000, 4000, 6000, 8000};

  std::printf("(99th %%-ile FCT for flows < 100KB, in MICROseconds)\n");
  std::vector<std::string> header{"rate_per_active_server_s"};
  for (const auto& s : scenarios) header.push_back(s.label);
  header.push_back("health");
  TextTable t(header);
  for (const double rate : per_server) {
    std::vector<std::string> cells{TextTable::fmt(rate, 0)};
    std::string health;
    for (const auto& s : scenarios) {
      const bool is_ft = s.topo != &topos.xpander;
      const auto active = is_ft
                              ? workload::first_fraction_racks(*s.topo, x)
                              : workload::random_fraction_racks(*s.topo, x, 5);
      const auto pairs = workload::all_to_all_pairs(*s.topo, active);
      const auto r =
          bench::run_point(s, *pairs, *sizes, rate, /*seed=*/31, full);
      cells.push_back(TextTable::fmt(r.fct.p99_short_fct_ms * 1000.0, 1));
      const auto note = bench::health_note(r);
      if (note != "ok" && health.empty()) health = note;
    }
    cells.push_back(health.empty() ? "ok" : health);
    t.add_row(std::move(cells));
  }
  t.print();
  std::printf(
      "\nExpected shape (paper): with RTT-bound small flows, Xpander's\n"
      "shorter paths yield a LOWER short-flow tail than the fat-tree;\n"
      "ECMP and HYB are equivalent here (A2A is uniform; most flows stay\n"
      "below the Q threshold).\n");
  return 0;
}
