// Micro-benchmarks for the discrete-event core: event queue throughput,
// link enqueue/dequeue cycles, and whole-simulation packets/second.
#include <benchmark/benchmark.h>

#include "core/experiment.hpp"
#include "sim/event_queue.hpp"
#include "sim/link.hpp"
#include "sim/network.hpp"
#include "topo/xpander.hpp"
#include "workload/flow_size.hpp"

namespace {

using namespace flexnets;

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::EventQueue q;
  Rng rng(1);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      sim::Event e;
      e.time = static_cast<TimeNs>(rng.next_u64(1'000'000));
      q.push(std::move(e));
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(65536);

void BM_LinkTransmitCycle(benchmark::State& state) {
  sim::Simulator sim;
  sim::LinkConfig cfg;
  sim::Link link(0, 0, 1, cfg);
  sim.set_handler([&](const sim::Event& e) {
    if (e.type == sim::EventType::kLinkDequeue) link.on_dequeue(sim);
  });
  sim::Packet p;
  p.wire_size = 1500;
  std::int64_t packets = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) link.enqueue(sim, p);
    sim.run();
    packets += 64;
  }
  state.SetItemsProcessed(packets);
}
BENCHMARK(BM_LinkTransmitCycle);

void BM_EndToEndPacketSim(benchmark::State& state) {
  // A small Xpander under moderate uniform load; reports simulator events
  // per second.
  const auto x = topo::xpander(4, 6, 3, 1);  // 30 switches, 90 servers
  const auto pairs = workload::all_to_all_pairs(x.topo, x.topo.tors());
  const auto sizes = workload::pfabric_web_search();
  std::int64_t events = 0;
  for (auto _ : state) {
    core::PacketSimOptions opts;
    opts.arrival_rate = 100.0 * x.topo.num_servers();
    opts.window_begin = 1 * kMillisecond;
    opts.window_end = 6 * kMillisecond;
    opts.arrival_tail = 2 * kMillisecond;
    opts.net.routing.mode = routing::RoutingMode::kHyb;
    const auto r = core::run_packet_experiment(x.topo, *pairs, *sizes, opts);
    events += static_cast<std::int64_t>(r.events);
  }
  state.SetItemsProcessed(events);
  state.SetLabel("items = simulator events");
}
BENCHMARK(BM_EndToEndPacketSim)->Unit(benchmark::kMillisecond);

}  // namespace
