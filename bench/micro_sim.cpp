// Micro-benchmarks for the discrete-event core: event queue throughput,
// link enqueue/dequeue cycles, and whole-simulation packets/second.
//
// Two modes:
//   (default)      google-benchmark suite, human-oriented.
//   --json [path]  runs pinned cases and writes BENCH_SIM.json — the
//                  recorded perf trajectory tools/ci.sh smoke-checks.
#include <benchmark/benchmark.h>

#include <cstdio>

#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "perf_json.hpp"
#include "util.hpp"
#include "sim/event_queue.hpp"
#include "sim/link.hpp"
#include "sim/network.hpp"
#include "topo/xpander.hpp"
#include "workload/flow_size.hpp"

namespace {

using namespace flexnets;

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::EventQueue q;
  q.reserve(n);
  Rng rng(1);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      sim::Event e;
      e.time = static_cast<TimeNs>(rng.next_u64(1'000'000));
      q.push(std::move(e));
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(65536);

void BM_LinkTransmitCycle(benchmark::State& state) {
  sim::Simulator sim;
  sim::LinkConfig cfg;
  sim::Link link(0, 0, 1, cfg);
  sim.set_handler([&](const sim::Event& e) {
    if (e.type == sim::EventType::kLinkDequeue) link.on_dequeue(sim);
  });
  sim::Packet p;
  p.wire_size = 1500;
  std::int64_t packets = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) link.enqueue(sim, p);
    sim.run();
    packets += 64;
  }
  state.SetItemsProcessed(packets);
}
BENCHMARK(BM_LinkTransmitCycle);

core::PacketResult run_e2e_packet_sim(int threads) {
  // A small Xpander under moderate uniform load (shared with the
  // benchmark-mode case below). threads = 1 runs the serial engine;
  // > 1 the conservative PDES engine (sim/pdes/) -- same results either
  // way, so the cases differ only in wall clock.
  const auto x = topo::xpander(4, 6, 3, 1);  // 30 switches, 90 servers
  const auto pairs = workload::all_to_all_pairs(x.topo, x.topo.tors());
  const auto sizes = workload::pfabric_web_search();
  core::PacketSimOptions opts;
  opts.arrival_rate = 100.0 * x.topo.num_servers();
  opts.window_begin = 1 * kMillisecond;
  opts.window_end = 6 * kMillisecond;
  opts.arrival_tail = 2 * kMillisecond;
  opts.net.routing.mode = routing::RoutingMode::kHyb;
  opts.threads = threads;
  return core::run_packet_experiment(x.topo, *pairs, *sizes, opts);
}

void BM_EndToEndPacketSim(benchmark::State& state) {
  // Reports simulator events per second; the arg is the engine's thread
  // count (1 = serial).
  const int threads = static_cast<int>(state.range(0));
  std::int64_t events = 0;
  for (auto _ : state) {
    const auto r = run_e2e_packet_sim(threads);
    events += static_cast<std::int64_t>(r.events);
  }
  state.SetItemsProcessed(events);
  state.SetLabel("items = simulator events");
}
BENCHMARK(BM_EndToEndPacketSim)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// --json mode: pinned cases for the recorded trajectory.

int run_json_mode(const std::string& path, int extra_threads) {
  std::vector<bench::PerfCase> cases;

  {
    constexpr std::size_t kEvents = 65536;
    sim::EventQueue q;
    q.reserve(kEvents);
    const double ns = bench::time_median_ns(5, [&] {
      Rng rng(1);
      for (std::size_t i = 0; i < kEvents; ++i) {
        sim::Event e;
        e.time = static_cast<TimeNs>(rng.next_u64(1'000'000));
        q.push(std::move(e));
      }
      while (!q.empty()) {
        const auto e = q.pop();
        benchmark::DoNotOptimize(&e);
      }
    });
    bench::PerfCase c;
    c.name = "event_queue_push_pop_64k";
    c.add("ns_per_op", ns / static_cast<double>(kEvents));
    std::printf("  %-32s %8.1f ns/event\n", c.name.c_str(),
                ns / static_cast<double>(kEvents));
    cases.push_back(c);
  }

  // End-to-end cases: the serial engine plus the parallel (sim/pdes/)
  // engine at the pinned thread counts -- or at an explicit `--threads N`.
  // Every case dispatches the identical event stream (the engines are
  // bit-equal), so ns/event is directly comparable across them.
  std::vector<int> thread_cases{1, 2, 4};
  if (extra_threads > 1) thread_cases.push_back(extra_threads);
  for (const int threads : thread_cases) {
    std::uint64_t events = 0;
    const double ns = bench::time_median_ns(3, [&] {
      const auto r = run_e2e_packet_sim(threads);
      events = r.events;
    });
    bench::PerfCase c;
    c.name = threads == 1 ? "e2e_packet_sim_xpander30"
                          : "e2e_packet_sim_xpander30_t" +
                                std::to_string(threads);
    c.add("ns_per_op", ns / static_cast<double>(events));
    c.add("events", static_cast<double>(events));
    std::printf("  %-32s %8.1f ns/event (%llu events)\n", c.name.c_str(),
                ns / static_cast<double>(events),
                static_cast<unsigned long long>(events));
    cases.push_back(c);
  }

  return bench::write_perf_json(path, "micro_sim", cases) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  if (bench::parse_json_flag(argc, argv, "BENCH_SIM.json", &path)) {
    // `--json --threads N` appends an e2e case at N workers on top of
    // the pinned {1, 2, 4}. (Benchmark mode covers the same grid via the
    // BM_EndToEndPacketSim threads arg instead of a flag.)
    return run_json_mode(path, bench::parse_threads(argc, argv));
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
