// Reproduces paper Fig 2: the throughput-proportionality ideal versus the
// oversubscribed fat-tree's flat-then-proportional curve (section 2).
//
// This bench also carries the CI resilience gate (tools/ci.sh): with
// --journal it appends each grid point durably, with --resume it skips
// journaled points, and --point-sleep-ms widens the window a SIGKILL can
// land in. The "digest fig2: ..." line must be bit-identical between an
// uninterrupted run and a killed-then-resumed one.
#include <cstdio>

#include "flow/fat_tree_model.hpp"
#include "flow/throughput.hpp"
#include "perf_json.hpp"
#include "util.hpp"

using namespace flexnets;

int main(int argc, char** argv) {
  bench::banner("Fig 2",
                "throughput proportionality vs fat-tree inflexibility");
  const int threads = bench::parse_threads(argc, argv);
  const auto flags = bench::parse_resilient_flags(argc, argv);
  const auto shard = bench::parse_shard_flags(argc, argv);
  std::string json_path;
  const bool json = bench::parse_json_flag(argc, argv, "BENCH_FIG2.json",
                                           &json_path);
  bench::ResilientState state;
  // Workers never journal: the coordinator alone writes the merged file.
  if (shard.worker_grid.empty()) bench::init_resilient_state(flags, &state);

  // Section 2.1's running example: a k=64 fat-tree oversubscribed to 50%.
  const flow::FatTreeModel ft{64, 0.5};
  const double alpha = ft.alpha;
  std::printf("fat-tree k=%d, alpha=%.2f -> beta = 2/k = %.4f; a pair of\n",
              ft.k, alpha, ft.beta());
  std::printf(
      "pods holding only %.1f%% of servers is stuck at %.0f%% throughput.\n\n",
      100.0 * ft.beta(), 100.0 * alpha);

  std::vector<double> xs;
  for (double x = 0.01; x <= 1.0 + 1e-9; x += (x < 0.1 ? 0.01 : 0.05)) {
    xs.push_back(x);
  }
  const auto records = bench::run_grid_resilient_sharded(
      argc, argv, xs.size(), threads, "fig2", &state, flags, shard,
      [&](std::size_t i) {
        return std::vector<std::pair<std::string, double>>{
            {"throughput_proportional", flow::tp_curve(alpha, xs[i])},
            {"fat_tree", ft.throughput(xs[i])}};
      });

  TextTable t({"fraction_x", "throughput_proportional", "fat_tree"});
  for (std::size_t i = 0; i < xs.size(); ++i) {
    t.add_row({xs[i], records[i].value("throughput_proportional"),
               records[i].value("fat_tree")},
              4);
  }
  t.print();
  std::printf(
      "\nShape check: TP reaches line rate at x = alpha = %.2f; the fat-tree\n"
      "stays at alpha until x = beta and reaches line rate only at x = "
      "alpha*beta = %.4f.\n\n",
      alpha, alpha * ft.beta());
  bench::print_digest_line("fig2", bench::grid_digest(records),
                           records.size(), bench::count_failed(records));

  if (json) {
    std::vector<bench::PerfCase> cases;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      bench::PerfCase c;
      c.name = "fig2_x" + std::to_string(i);
      c.add("fraction_x", xs[i]);
      c.add("throughput_proportional",
            records[i].value("throughput_proportional"));
      c.add("fat_tree", records[i].value("fat_tree"));
      cases.push_back(std::move(c));
    }
    if (!bench::write_perf_json(json_path, "fig2", cases)) return 1;
  }
  return 0;
}
