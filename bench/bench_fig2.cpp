// Reproduces paper Fig 2: the throughput-proportionality ideal versus the
// oversubscribed fat-tree's flat-then-proportional curve (section 2).
#include <cstdio>

#include "flow/fat_tree_model.hpp"
#include "flow/throughput.hpp"
#include "util.hpp"

using namespace flexnets;

int main(int argc, char** argv) {
  bench::banner("Fig 2",
                "throughput proportionality vs fat-tree inflexibility");
  const int threads = bench::parse_threads(argc, argv);

  // Section 2.1's running example: a k=64 fat-tree oversubscribed to 50%.
  const flow::FatTreeModel ft{64, 0.5};
  const double alpha = ft.alpha;
  std::printf("fat-tree k=%d, alpha=%.2f -> beta = 2/k = %.4f; a pair of\n",
              ft.k, alpha, ft.beta());
  std::printf(
      "pods holding only %.1f%% of servers is stuck at %.0f%% throughput.\n\n",
      100.0 * ft.beta(), 100.0 * alpha);

  std::vector<double> xs;
  for (double x = 0.01; x <= 1.0 + 1e-9; x += (x < 0.1 ? 0.01 : 0.05)) {
    xs.push_back(x);
  }
  struct Row {
    double tp = 0.0;
    double ft = 0.0;
  };
  const auto rows = bench::run_grid(xs.size(), threads, [&](std::size_t i) {
    return Row{flow::tp_curve(alpha, xs[i]), ft.throughput(xs[i])};
  });

  TextTable t({"fraction_x", "throughput_proportional", "fat_tree"});
  for (std::size_t i = 0; i < xs.size(); ++i) {
    t.add_row({xs[i], rows[i].tp, rows[i].ft}, 4);
  }
  t.print();
  std::printf(
      "\nShape check: TP reaches line rate at x = alpha = %.2f; the fat-tree\n"
      "stays at alpha until x = beta and reaches line rate only at x = "
      "alpha*beta = %.4f.\n",
      alpha, alpha * ft.beta());
  return 0;
}
