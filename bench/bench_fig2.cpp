// Reproduces paper Fig 2: the throughput-proportionality ideal versus the
// oversubscribed fat-tree's flat-then-proportional curve (section 2).
#include <cstdio>

#include "flow/fat_tree_model.hpp"
#include "flow/throughput.hpp"
#include "util.hpp"

using namespace flexnets;

int main() {
  bench::banner("Fig 2",
                "throughput proportionality vs fat-tree inflexibility");

  // Section 2.1's running example: a k=64 fat-tree oversubscribed to 50%.
  const flow::FatTreeModel ft{64, 0.5};
  const double alpha = ft.alpha;
  std::printf("fat-tree k=%d, alpha=%.2f -> beta = 2/k = %.4f; a pair of\n",
              ft.k, alpha, ft.beta());
  std::printf(
      "pods holding only %.1f%% of servers is stuck at %.0f%% throughput.\n\n",
      100.0 * ft.beta(), 100.0 * alpha);

  TextTable t({"fraction_x", "throughput_proportional", "fat_tree"});
  for (double x = 0.01; x <= 1.0 + 1e-9; x += (x < 0.1 ? 0.01 : 0.05)) {
    t.add_row({x, flow::tp_curve(alpha, x), ft.throughput(x)}, 4);
  }
  t.print();
  std::printf(
      "\nShape check: TP reaches line rate at x = alpha = %.2f; the fat-tree\n"
      "stays at alpha until x = beta and reaches line rate only at x = "
      "alpha*beta = %.4f.\n",
      alpha, alpha * ft.beta());
  return 0;
}
