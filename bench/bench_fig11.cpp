// Reproduces paper Fig 11: Permute(0.31) with pFabric sizes, sweeping the
// aggregate flow arrival rate. Adds the "77%-fat-tree" (an oversubscribed
// fat-tree at ~23% lower cost), whose performance collapses much earlier
// than the cheaper Xpander with HYB.
#include <cstdio>

#include "util.hpp"
#include "workload/flow_size.hpp"

using namespace flexnets;

int main() {
  bench::banner("Fig 11",
                "Permute(0.31) vs arrival rate, incl. the 77%-fat-tree");

  const bool full = core::repro_full();
  auto topos = bench::section64_topologies(full);
  // 77%-fat-tree: keep ~77% of network ports by stripping cores
  // (k=16: 35/64 cores; k=8: 9/16 cores).
  const auto ft77 = full ? topo::fat_tree_stripped(16, 35)
                         : topo::fat_tree_stripped(8, 9);
  const auto sizes = workload::pfabric_web_search();

  const std::vector<bench::Scenario> scenarios{
      {"fat-tree", &topos.fat_tree.topo, routing::RoutingMode::kEcmp},
      {"xpander-ECMP", &topos.xpander, routing::RoutingMode::kEcmp},
      {"xpander-HYB", &topos.xpander, routing::RoutingMode::kHyb},
      {"77%-fat-tree", &ft77.topo, routing::RoutingMode::kEcmp},
  };

  // Paper: 0.31 of servers (an integer number of racks), lambda up to
  // overload of the full fat-tree (120K/s at 1024 servers ~ 380/s per
  // active server).
  const double x = 0.31;
  const std::vector<double> per_server =
      full ? std::vector<double>{60, 120, 190, 250, 320, 380}
           : std::vector<double>{80, 160, 240, 320, 400};

  std::vector<bench::SweepRow> rows;
  for (const double rate : per_server) {
    bench::SweepRow row;
    row.x = rate;
    for (const auto& s : scenarios) {
      const bool is_ft = s.topo != &topos.xpander;
      const auto active = is_ft
                              ? workload::first_fraction_racks(*s.topo, x)
                              : workload::random_fraction_racks(*s.topo, x, 5);
      const auto pairs = workload::permutation_pairs(*s.topo, active, 21);
      row.results.push_back(
          bench::run_point(s, *pairs, *sizes, rate, /*seed=*/29, full));
    }
    rows.push_back(std::move(row));
  }
  bench::print_three_panels("rate_per_active_server_s", scenarios, rows);
  std::printf(
      "Expected shape (paper): xpander-HYB tracks the full-bandwidth\n"
      "fat-tree closely across the sweep; the 77%%-fat-tree deteriorates\n"
      "much earlier; xpander-ECMP is poor throughout (permutation traffic).\n");
  return 0;
}
