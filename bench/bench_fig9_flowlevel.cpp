// Fig 9 at the paper's full topology scale, via the flow-level simulator:
// fat-tree k=16 (1024 servers) vs Xpander 216x16p (1080 servers), A2A(x) at
// 167 flows/s per active server. The packet-level bench_fig9 runs these
// parameters only under REPRO_FULL=1 (hours); the fluid engine reproduces
// the same crossover shape by default in minutes on one core.
#include <cstdio>

#include "flowsim/flow_sim.hpp"
#include "metrics/fct_tracker.hpp"
#include "topo/fat_tree.hpp"
#include "topo/xpander.hpp"
#include "util.hpp"
#include "workload/flow_size.hpp"

using namespace flexnets;

namespace {

metrics::FctSummary run_fluid(const topo::Topology& t,
                              flowsim::FlowRouting mode,
                              const workload::PairDistribution& pairs,
                              double rate_per_server, TimeNs w0, TimeNs w1,
                              TimeNs tail) {
  int active_servers = 0;
  for (const auto r : pairs.active_racks()) {
    active_servers += t.servers_per_switch[r];
  }
  const double rate = rate_per_server * active_servers;
  const auto sizes = workload::pfabric_web_search();
  const int num_flows =
      static_cast<int>(rate * to_seconds(w1 + tail));
  const auto flows = workload::generate_flows(pairs, *sizes, rate,
                                              num_flows, /*seed=*/13);
  flowsim::FlowSimConfig cfg;
  cfg.routing = mode;
  flowsim::FlowLevelSimulator sim(t, cfg);
  const auto records = sim.run(flows);
  return metrics::summarize(records, w0, w1, workload::kShortFlowThreshold);
}

}  // namespace

int main() {
  bench::banner("Fig 9 (flow-level engine, paper-scale topologies)",
                "A2A(x), 167 flows/s/server at larger-than-packet-default scale");

  const bool full = core::repro_full();
  // Default: a half-scale rendition (k=12 fat-tree, 432 servers, vs an
  // Xpander-class expander with 2/3 the switches) that finishes in a
  // couple of minutes on one core. REPRO_FULL=1: the paper's k=16 /
  // 216x16p topologies with the full [0.5s, 1.5s) measurement window.
  const auto ft = full ? topo::fat_tree(16) : topo::fat_tree(12);
  const auto xp_topo = full ? topo::xpander(11, 18, 5, /*seed=*/1).topo
                            : topo::xpander_for(120, 8, 4, /*seed=*/1);
  const TimeNs w0 = full ? 500 * kMillisecond : 30 * kMillisecond;
  const TimeNs w1 = full ? 1500 * kMillisecond : 90 * kMillisecond;
  const TimeNs tail = full ? 500 * kMillisecond : 30 * kMillisecond;
  std::printf("fat-tree k=%d (%d servers) vs %s (%d servers)\n\n",
              full ? 16 : 12, ft.topo.num_servers(), xp_topo.name.c_str(),
              xp_topo.num_servers());

  const std::vector<double> fractions =
      full ? std::vector<double>{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
           : std::vector<double>{0.2, 0.4, 0.6, 0.8, 1.0};

  TextTable t({"fraction_active", "fat-tree_avgFCT_ms",
               "xpander-ECMP_avgFCT_ms", "xpander-HYB_avgFCT_ms",
               "fat-tree_tput_G", "xpander-HYB_tput_G"});
  for (const double x : fractions) {
    const auto ft_pairs = workload::all_to_all_pairs(
        ft.topo, workload::first_fraction_racks(ft.topo, x));
    const auto xp_pairs = workload::all_to_all_pairs(
        xp_topo, workload::random_fraction_racks(xp_topo, x, 5));

    const auto ftr = run_fluid(ft.topo, flowsim::FlowRouting::kEcmpSampled,
                               *ft_pairs, 167.0, w0, w1, tail);
    const auto xer = run_fluid(xp_topo, flowsim::FlowRouting::kEcmpSampled,
                               *xp_pairs, 167.0, w0, w1, tail);
    const auto xhr = run_fluid(xp_topo, flowsim::FlowRouting::kHyb, *xp_pairs,
                               167.0, w0, w1, tail);
    t.add_row({TextTable::fmt(x, 2), TextTable::fmt(ftr.avg_fct_ms, 3),
               TextTable::fmt(xer.avg_fct_ms, 3),
               TextTable::fmt(xhr.avg_fct_ms, 3),
               TextTable::fmt(ftr.avg_long_tput_gbps, 2),
               TextTable::fmt(xhr.avg_long_tput_gbps, 2)});
  }
  t.print();
  std::printf(
      "\nExpected shape (paper Fig 9, fluid rendition): the 33%%-cheaper\n"
      "Xpander tracks the full-bandwidth fat-tree while the active\n"
      "fraction is small-to-moderate and falls behind only at large x.\n");
  return 0;
}
