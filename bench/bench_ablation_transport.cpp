// Transport ablation: what the paper's DCTCP choice buys, and the
// sensitivity of the headline result to transport parameters.
//   (1) ECN marking threshold K: none (drop-based NewReno behavior),
//       shallow (5 pkts), paper (20 pkts), deep (80 pkts);
//   (2) minimum RTO: 200us / 1ms / 10ms.
// Workload: A2A over all racks on the cheap Xpander with HYB -- the
// configuration the paper's section 6 conclusions rest on.
#include <cstdio>

#include "util.hpp"
#include "workload/flow_size.hpp"

using namespace flexnets;

namespace {

core::PacketResult run(const topo::Topology& xp, Bytes ecn_threshold,
                       TimeNs min_rto, bool full) {
  core::PacketSimOptions opts = bench::default_packet_options(full);
  const auto pairs = workload::all_to_all_pairs(xp, xp.tors());
  const auto sizes = workload::pfabric_web_search();
  opts.arrival_rate = 100.0 * xp.num_servers();
  opts.net.routing.mode = routing::RoutingMode::kHyb;
  opts.net.network_link.ecn_threshold = ecn_threshold;
  opts.net.server_link.ecn_threshold = ecn_threshold;
  opts.net.transport.min_rto = min_rto;
  opts.seed = 67;
  return core::run_packet_experiment(xp, *pairs, *sizes, opts);
}

void add(TextTable& t, const std::string& label, const core::PacketResult& r) {
  t.add_row({label, TextTable::fmt(r.fct.avg_fct_ms, 3),
             TextTable::fmt(r.fct.p99_short_fct_ms, 3),
             TextTable::fmt(r.fct.avg_long_tput_gbps, 3),
             std::to_string(r.drops), std::to_string(r.ecn_marks)});
}

}  // namespace

int main() {
  bench::banner("Ablation: transport",
                "ECN threshold and min-RTO sensitivity (Xpander + HYB, A2A)");

  const bool full = core::repro_full();
  auto topos = bench::section64_topologies(full);
  const auto& xp = topos.xpander;

  std::printf("(1) ECN marking threshold (min RTO fixed at 200us)\n");
  {
    TextTable t({"K", "avg_FCT_ms", "p99_short_ms", "long_tput_Gbps",
                 "drops", "ecn_marks"});
    add(t, "none (drop-based)", run(xp, 1'000'000'000, 200 * kMicrosecond, full));
    add(t, "5 pkts (7.5KB)", run(xp, 7'500, 200 * kMicrosecond, full));
    add(t, "20 pkts (30KB, paper)", run(xp, 30'000, 200 * kMicrosecond, full));
    add(t, "80 pkts (120KB)", run(xp, 120'000, 200 * kMicrosecond, full));
    t.print();
  }
  std::printf(
      "\nExpected: without ECN the sender fills queues until drops (high\n"
      "tail FCT); very shallow marking sacrifices long-flow throughput;\n"
      "the paper's K=20 balances both.\n\n");

  std::printf("(2) minimum RTO (K fixed at 20 pkts)\n");
  {
    TextTable t({"min_RTO", "avg_FCT_ms", "p99_short_ms", "long_tput_Gbps",
                 "drops", "ecn_marks"});
    add(t, "200us", run(xp, 30'000, 200 * kMicrosecond, full));
    add(t, "1ms", run(xp, 30'000, 1 * kMillisecond, full));
    add(t, "10ms", run(xp, 30'000, 10 * kMillisecond, full));
    t.print();
  }
  std::printf(
      "\nExpected: at datacenter RTTs (tens of us), a large RTO floor turns\n"
      "every tail drop into a millisecond-scale stall, inflating the\n"
      "short-flow tail by an order of magnitude.\n");
  return 0;
}
