// Reproduces the section 4.1 toy example (Fig 4): 54 switches, 12 ports,
// 6 servers each, traffic only between 9 racks.
//  - restricted dynamic model: upper-bounded at 80% throughput;
//  - unrestricted dynamic model: full throughput (delta = 1);
//  - the static wiring of Fig 4: full throughput;
//  - equal-cost Jellyfish (delta = 1.5) in both configurations from the
//    paper: (a) 54 switches with 9 network ports, (b) 81 switches with the
//    same 12-port radix.
#include <cstdio>

#include "flow/dynamic_models.hpp"
#include "flow/throughput.hpp"
#include "flow/tm_generators.hpp"
#include "topo/jellyfish.hpp"
#include "topo/toy.hpp"
#include "util.hpp"

using namespace flexnets;

int main() {
  bench::banner("Section 4.1 toy example",
                "static wiring vs un/restricted dynamic models, 9 active racks");

  const double eps = 0.04;
  TextTable t({"design", "per_server_throughput"});

  // Analytic dynamic models: 9 racks, 6 network ports, 6 servers.
  t.add_row({"restricted dynamic (delta=1)",
             TextTable::fmt(flow::restricted_dynamic_throughput(9, 6, 6, 1.0), 3)});
  t.add_row({"unrestricted dynamic (delta=1)",
             TextTable::fmt(flow::unrestricted_dynamic_throughput(6, 6, 1.0), 3)});

  // The static topology of Fig 4 under a hard TM over the 9 active racks.
  const auto toy = topo::toy_section41();
  const auto tm = flow::longest_matching_tm(toy.topo, toy.active_tors);
  t.add_row({"static Fig-4 wiring (45 fat-tree switches + 9 ToRs)",
             TextTable::fmt(flow::per_server_throughput(toy.topo, tm, {eps}), 3)});

  // Equal-cost Jellyfish variants (delta = 1.5 -> static affords 1.5x the
  // dynamic network's 6 ports): permutation among 9 random racks.
  {
    const auto jf = topo::jellyfish(54, 9, 6, 1);
    const auto active = flow::pick_active_racks(jf, 9, 3);
    const auto jtm = flow::longest_matching_tm(jf, active);
    t.add_row({"jellyfish 54 switches x 9 net ports (delta=1.5 budget)",
               TextTable::fmt(flow::per_server_throughput(jf, jtm, {eps}), 3)});
  }
  {
    // Same radix (12 = 4 servers + 8 net ports), more switches: 81 carry
    // the same 324 servers.
    const auto jf = topo::jellyfish(81, 8, 4, 1);
    const auto active = flow::pick_active_racks(jf, 14, 3);  // ~54 servers
    const auto jtm = flow::longest_matching_tm(jf, active);
    t.add_row({"jellyfish 81 switches x 12-port radix (delta=1.5 budget)",
               TextTable::fmt(flow::per_server_throughput(jf, jtm, {eps}), 3)});
  }
  t.print();

  std::printf(
      "\nExpected (paper 4.1): restricted dynamic capped at 0.80; the static\n"
      "Fig-4 wiring and the equal-cost Jellyfish configurations reach ~1.0\n"
      "without knowing which racks would be active.\n");
  return 0;
}
