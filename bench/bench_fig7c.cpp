// Reproduces paper Fig 7(c): all-to-all traffic across the whole network.
// Here shortest paths are the right choice: ECMP matches the full-bandwidth
// fat-tree while VLB's 2x bandwidth tax degrades as load rises.
#include <cstdio>

#include "util.hpp"
#include "workload/flow_size.hpp"

using namespace flexnets;

int main() {
  bench::banner("Fig 7(c)", "all-to-all: VLB's bandwidth tax vs ECMP");

  const bool full = core::repro_full();
  auto topos = bench::section64_topologies(full);

  const auto xp_pairs =
      workload::all_to_all_pairs(topos.xpander, topos.xpander.tors());
  const auto ft_pairs = workload::all_to_all_pairs(
      topos.fat_tree.topo, topos.fat_tree.topo.tors());
  const auto sizes = workload::pfabric_web_search();

  const std::vector<bench::Scenario> scenarios{
      {"fat-tree", &topos.fat_tree.topo, routing::RoutingMode::kEcmp},
      {"xpander-ECMP", &topos.xpander, routing::RoutingMode::kEcmp},
      {"xpander-VLB", &topos.xpander, routing::RoutingMode::kVlb},
  };

  // Flow starts per second per server. 10G / (2.33MB * 8) ~ 536/s/server is
  // line rate; VLB halves the usable capacity on the oversubscribed
  // Xpander, so it should degrade first.
  const std::vector<double> per_server =
      full ? std::vector<double>{50, 100, 150, 200, 250}
           : std::vector<double>{40, 80, 120, 160};

  std::vector<bench::SweepRow> rows;
  for (const double rate : per_server) {
    bench::SweepRow row;
    row.x = rate;
    for (const auto& s : scenarios) {
      const auto& pairs = s.topo == &topos.xpander ? *xp_pairs : *ft_pairs;
      row.results.push_back(
          bench::run_point(s, pairs, *sizes, rate, /*seed=*/11, full));
    }
    rows.push_back(std::move(row));
  }
  bench::print_three_panels("rate_per_server_s", scenarios, rows);
  std::printf(
      "Expected shape (paper): ECMP tracks the fat-tree across the sweep;\n"
      "VLB deteriorates as load grows because it burns 2x capacity per\n"
      "byte on a uniformly loaded network.\n");
  return 0;
}
