// How hard are the paper's "longest matching" TMs really? The paper calls
// finding worst-case TMs computationally non-trivial and uses the matching
// heuristic as a best effort (section 5). This bench runs local search on
// top of that heuristic and reports how much further throughput can be
// pushed down -- for the expander AND the equal-equipment fat-tree, so the
// section 5 comparisons' robustness to the TM choice is visible.
#include <cstdio>

#include "flow/adversary.hpp"
#include "flow/throughput.hpp"
#include "flow/tm_generators.hpp"
#include "topo/fat_tree.hpp"
#include "topo/jellyfish.hpp"
#include "util.hpp"

using namespace flexnets;

int main() {
  bench::banner("Adversarial TM search",
                "local search below the longest-matching heuristic");

  const bool full = core::repro_full();
  const int iters = full ? 60 : 25;
  const double eps = full ? 0.08 : 0.06;

  struct Entry {
    std::string label;
    topo::Topology t;
  };
  std::vector<Entry> entries;
  entries.push_back({"jellyfish 32x8 (4 srv)", topo::jellyfish(32, 8, 4, 1)});
  entries.push_back(
      {"fat-tree k=8 (half cores)", topo::fat_tree_stripped(8, 8).topo});

  TextTable t({"topology", "active_racks", "longest_matching",
               "after_search", "accepted_swaps", "hardening"});
  for (const auto& e : entries) {
    // All racks active: the regime where matching structure matters most.
    const int m = static_cast<int>(e.t.tors().size());
    const auto active = flow::pick_active_racks(e.t, m, 3);
    const auto r = flow::adversarial_matching_tm(e.t, active, iters, eps, 7);
    t.add_row({e.label, std::to_string(m),
               TextTable::fmt(r.initial_throughput, 3),
               TextTable::fmt(r.throughput, 3),
               std::to_string(r.improvements),
               TextTable::fmt(
                   r.initial_throughput > 0
                       ? 100.0 * (1.0 - r.throughput / r.initial_throughput)
                       : 0.0,
                   1) +
                   "%"});
  }
  t.print();

  // Random hose TMs for context: how hard are matchings vs generic hose
  // traffic on the expander?
  {
    const auto& jf = entries[0].t;
    const auto active = flow::pick_active_racks(jf, 16, 3);
    const double hose = flow::per_server_throughput(
        jf, flow::random_hose_tm(jf, active, 3, 1), {eps});
    const double lm = flow::per_server_throughput(
        jf, flow::longest_matching_tm(jf, active), {eps});
    std::printf(
        "\ncontext (jellyfish, 16 active racks): random hose TM %.3f vs\n"
        "longest matching %.3f -- matchings are the harder family, as the\n"
        "paper's section 5 methodology assumes.\n",
        hose, lm);
  }
  std::printf(
      "\nReading: local search shaves only a modest margin off the\n"
      "heuristic on the expander (the section 5 numbers are not an easy-TM\n"
      "artifact); structured fat-trees are already at their analytic\n"
      "bottleneck and barely move.\n");
  return 0;
}
