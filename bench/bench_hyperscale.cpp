// Hyperscale throughput evaluation: CSR-native jellyfish construction and
// cut/dual throughput brackets at 10k / 50k / 100k switches — scales no
// adjacency-list path reaches. Also runs the bit-identity cross-check that
// anchors the whole flat path: GK lambda through CsrTopology + TmView must
// equal the materialized Topology + TrafficMatrix lambda bit for bit on
// jellyfish-32/64, or this binary exits nonzero.
//
// Modes / flags:
//   (default)            human-oriented table of build/bracket timings.
//   --json [path]        append the hs_* cases into BENCH_MCF.json
//                        (append_perf_json: micro_flow's cases survive).
//   --rss-budget-mb N    exit nonzero if peak RSS (VmHWM) exceeds N MB —
//                        the committed memory budget for the 100k bracket.
//   --max-switches N     skip scales above N switches (CI smoke knob).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "flow/bracket.hpp"
#include "flow/throughput.hpp"
#include "flow/tm_generators.hpp"
#include "flow/tm_view.hpp"
#include "perf_json.hpp"
#include "topo/jellyfish.hpp"
#include "util.hpp"

namespace {

using namespace flexnets;

// Exact bit equality, the acceptance criterion — not a tolerance compare.
bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

struct Scale {
  const char* tag;
  int num_switches;
};
// degree 16, 8 servers/rack: 100k switches = 800k servers, 1.6M links.
constexpr int kDegree = 16;
constexpr int kServers = 8;
constexpr Scale kScales[] = {{"10k", 10'000}, {"50k", 50'000},
                             {"100k", 100'000}};

// One hyperscale scale point: CSR build, implicit all-to-all TmView, and
// the throughput bracket. Emits hs_build_* and hs_bracket_* cases; the
// per-case peak_rss_kb is the process high-water mark after that case (run
// order is ascending scale, so the 100k row is the committed budget).
void run_scale(const Scale& s, std::vector<bench::PerfCase>* cases,
               TextTable* table) {
  const double t0 = bench::monotonic_ns();
  const auto t = topo::jellyfish_csr(s.num_switches, kDegree, kServers, 1);
  const double build_ns = bench::monotonic_ns() - t0;

  bench::PerfCase build{std::string("hs_build_jf") + s.tag, {}};
  build.add("ns_per_op", build_ns);
  build.add("switches", static_cast<double>(t.num_switches));
  build.add("edges", static_cast<double>(t.num_network_links()));
  build.add("peak_rss_kb", bench::peak_rss_kb());
  cases->push_back(build);

  const auto view = flow::all_to_all_view(t, t.tors());
  const double t1 = bench::monotonic_ns();
  const auto br = flow::throughput_bracket(t, view);
  const double bracket_ns = bench::monotonic_ns() - t1;

  bench::PerfCase bracket{std::string("hs_bracket_jf") + s.tag, {}};
  bracket.add("ns_per_op", bracket_ns);
  bracket.add("lower", br.lower);
  bracket.add("upper", br.upper);
  bracket.add("upper_node_cut", br.upper_node_cut);
  bracket.add("upper_spectral_cut", br.upper_spectral_cut);
  bracket.add("upper_path_length", br.upper_path_length);
  bracket.add("commodities", static_cast<double>(view.num_commodities()));
  bracket.add("peak_rss_kb", bench::peak_rss_kb());
  cases->push_back(bracket);

  table->add_row({std::string("jellyfish ") + s.tag + "x16",
                  TextTable::fmt(build_ns / 1e6, 1),
                  TextTable::fmt(bracket_ns / 1e6, 1),
                  TextTable::fmt(br.lower, 4), TextTable::fmt(br.upper, 4),
                  TextTable::fmt(bench::peak_rss_kb() / 1024.0, 0)});
}

// The guard that keeps the streaming path honest: handing an implicit
// hyperscale TM to the GK materializer must refuse with structured
// kInvalidInput, never attempt the 10^10-commodity allocation.
bool check_cap_guard(const topo::CsrTopology& t, const flow::TmView& view,
                     std::vector<bench::PerfCase>* cases) {
  const auto cache = flow::build_throughput_cache(t);
  const double t0 = bench::monotonic_ns();
  const auto refused = flow::build_mcf_instance(cache, view);
  const double refuse_ns = bench::monotonic_ns() - t0;
  const bool ok = !refused.ok() &&
                  refused.status().code() == StatusCode::kInvalidInput;
  bench::PerfCase c{"hs_cap_guard_jf100k", {}};
  c.add("ns_per_op", refuse_ns);  // the refusal itself must be O(1)-cheap
  c.add("commodities", static_cast<double>(view.num_commodities()));
  c.add("cap_refused", ok ? 1.0 : 0.0);
  cases->push_back(c);
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: commodity cap did not refuse a %lld-commodity "
                 "materialization\n",
                 static_cast<long long>(view.num_commodities()));
  }
  return ok;
}

// GK lambda through the flat path vs the materialized path on the same
// wiring and the same TM. Returns false (and records bit_identical = 0) on
// any bit difference.
bool run_bit_check(const char* name, int n, int degree, int servers,
                   bool permutation, std::vector<bench::PerfCase>* cases) {
  const auto t = topo::jellyfish(n, degree, servers, 1);
  const auto ct = topo::jellyfish_csr(n, degree, servers, 1);

  double lambda_ref = 0.0;
  double lambda_csr = 0.0;
  double csr_solve_ns = 0.0;
  const flow::ThroughputOptions opts{0.1, {}};
  if (permutation) {
    const auto active = flow::pick_active_racks(t, n / 2, 7);
    const auto tm = flow::random_permutation_tm(t, active, 7);
    lambda_ref = flow::per_server_throughput(t, tm, opts);
    const auto active_csr = flow::pick_active_racks_csr(ct, n / 2, 7);
    const auto view = flow::random_permutation_view(ct, active_csr, 7);
    csr_solve_ns = bench::monotonic_ns();
    lambda_csr = flow::per_server_throughput(ct, view, opts);
    csr_solve_ns = bench::monotonic_ns() - csr_solve_ns;
  } else {
    const auto tm = flow::all_to_all_tm(t, t.tors());
    lambda_ref = flow::per_server_throughput(t, tm, opts);
    const auto view = flow::all_to_all_view(ct, ct.tors());
    csr_solve_ns = bench::monotonic_ns();
    lambda_csr = flow::per_server_throughput(ct, view, opts);
    csr_solve_ns = bench::monotonic_ns() - csr_solve_ns;
  }

  const bool identical = same_bits(lambda_ref, lambda_csr);
  bench::PerfCase c{name, {}};
  c.add("ns_per_op", csr_solve_ns);
  c.add("lambda", lambda_csr);
  c.add("bit_identical", identical ? 1.0 : 0.0);
  cases->push_back(c);
  if (!identical) {
    std::fprintf(stderr, "FAIL: %s lambda mismatch: csr %.17g vs ref %.17g\n",
                 name, lambda_csr, lambda_ref);
  }
  return identical;
}

double parse_double_flag(int argc, char** argv, const char* flag,
                         double fallback) {
  const std::string eq = std::string(flag) + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == flag && i + 1 < argc) return std::atof(argv[i + 1]);
    if (arg.rfind(eq, 0) == 0) return std::atof(arg.c_str() + eq.size());
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("Hyperscale bracket",
                "CSR jellyfish build + throughput bracket at 10k-100k "
                "switches, GK bit-identity cross-check");
  const double rss_budget_mb =
      parse_double_flag(argc, argv, "--rss-budget-mb", 0.0);
  const int max_switches = static_cast<int>(
      parse_double_flag(argc, argv, "--max-switches", 100'000));

  std::vector<bench::PerfCase> cases;
  TextTable table({"topology", "build_ms", "bracket_ms", "lower", "upper",
                   "peak_rss_mb"});

  bool ok = true;
  ok &= run_bit_check("hs_gk_bitcheck_jf32_a2a", 32, 6, 4, false, &cases);
  ok &= run_bit_check("hs_gk_bitcheck_jf64_perm", 64, 8, 4, true, &cases);

  for (const auto& s : kScales) {
    if (s.num_switches > max_switches) continue;
    run_scale(s, &cases, &table);
    if (s.num_switches == 100'000) {
      const auto t = topo::jellyfish_csr(s.num_switches, kDegree, kServers, 1);
      ok &= check_cap_guard(t, flow::all_to_all_view(t, t.tors()), &cases);
    }
  }

  table.print();
  std::printf("bit-identity: %s\n", ok ? "PASS" : "FAIL");

  const double rss_mb = bench::peak_rss_kb() / 1024.0;
  if (rss_budget_mb > 0.0) {
    std::printf("peak RSS %.0f MB (budget %.0f MB)\n", rss_mb, rss_budget_mb);
    if (rss_mb > rss_budget_mb) {
      std::fprintf(stderr, "FAIL: peak RSS exceeds --rss-budget-mb\n");
      ok = false;
    }
  }

  std::string json_path;
  if (bench::parse_json_flag(argc, argv, "BENCH_MCF.json", &json_path)) {
    if (!bench::append_perf_json(json_path, "micro_flow", cases)) ok = false;
  }
  return ok ? 0 : 1;
}
