// Reproduces paper Fig 15: the Skew(0.04, 0.77) comparison at larger
// scale -- a k=24 fat-tree vs an Xpander built at a fraction of its cost
// (paper: 322 switches of 24 ports vs the fat-tree's 720). Server-level
// bottlenecks are modeled. Xpander's cost-efficiency improves with scale:
// even ECMP does better here, and HYB matches the fat-tree.
#include <cstdio>

#include "cost/cost_model.hpp"
#include "topo/xpander.hpp"
#include "util.hpp"
#include "workload/flow_size.hpp"

using namespace flexnets;

int main() {
  bench::banner("Fig 15", "Skew(0.04,0.77) at larger scale, ~45% of cost");

  const bool full = core::repro_full();
  // Paper: k=24 fat-tree (720 switches, 3456 servers) vs Xpander with 322
  // switches of 24 ports (11 servers + 13 network ports -> 3542 servers).
  // Scaled: k=12 fat-tree (180 switches, 432 servers) vs Xpander with 81
  // switches of 12 ports (6 servers + 6 network ports -> 486 servers).
  const auto ft = full ? topo::fat_tree(24) : topo::fat_tree(12);
  const auto xp = full ? topo::xpander_for(322, 13, 11, /*seed=*/1)
                       : topo::xpander_for(81, 6, 6, /*seed=*/1);
  std::printf(
      "fat-tree: %d switches, %d servers | xpander: %d switches, %d servers\n"
      "switch-count ratio: %.0f%%, network-port cost ratio: %.0f%%\n\n",
      ft.topo.num_switches(), ft.topo.num_servers(), xp.num_switches(),
      xp.num_servers(),
      100.0 * xp.num_switches() / ft.topo.num_switches(),
      100.0 * cost::network_cost(xp) / cost::network_cost(ft.topo));

  const auto sizes = workload::pfabric_web_search();
  const std::vector<bench::Scenario> scenarios{
      {"fat-tree", &ft.topo, routing::RoutingMode::kEcmp},
      {"xpander-ECMP", &xp, routing::RoutingMode::kEcmp},
      {"xpander-HYB", &xp, routing::RoutingMode::kHyb},
  };

  // Paper sweeps to 80K flow-starts/s at 3456 servers (~23/s/server).
  const std::vector<double> per_server =
      full ? std::vector<double>{4, 8, 12, 16, 20, 23}
           : std::vector<double>{8, 16, 24, 32, 40};

  std::vector<bench::SweepRow> rows;
  for (const double rate : per_server) {
    bench::SweepRow row;
    row.x = rate;
    for (const auto& s : scenarios) {
      const auto pairs = workload::skew_pairs(*s.topo, 0.04, 0.77, 53);
      row.results.push_back(
          bench::run_point(s, *pairs, *sizes, rate, /*seed=*/59, full));
    }
    rows.push_back(std::move(row));
  }
  bench::print_three_panels("rate_per_server_s", scenarios, rows);
  std::printf(
      "Expected shape (paper): xpander-HYB matches the full-bandwidth\n"
      "fat-tree; xpander-ECMP fares better than at small scale but still\n"
      "degrades at the highest rates; cost-efficiency improves with scale.\n");
  return 0;
}
