// Reproduces paper Fig 8: the two flow-size distributions used by the
// packet-level experiments, as CDF tables plus sampled statistics.
#include <cstdio>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "util.hpp"
#include "workload/flow_size.hpp"

using namespace flexnets;

int main() {
  bench::banner("Fig 8", "flow size distributions (CDF)");

  const auto pfabric = workload::pfabric_web_search();
  const auto pareto = workload::pareto_hull();

  TextTable t({"size_bytes", "pareto_hull_cdf", "pfabric_web_search_cdf"});
  for (double s = 1e3; s <= 1e9 + 1; s *= 2.15443469) {  // ~3 points/decade
    const auto size = static_cast<Bytes>(s);
    t.add_row({TextTable::fmt(s, 0), TextTable::fmt(pareto->cdf(size), 4),
               TextTable::fmt(pfabric->cdf(size), 4)});
  }
  t.print();

  for (const auto* d :
       {static_cast<const workload::FlowSizeDistribution*>(pareto.get()),
        static_cast<const workload::FlowSizeDistribution*>(pfabric.get())}) {
    Rng rng(1);
    RunningStats st;
    int short_flows = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
      const auto s = d->sample(rng);
      st.add(static_cast<double>(s));
      short_flows += (s < workload::kShortFlowThreshold);
    }
    std::printf(
        "\n%s: sampled mean = %.0f KB, %%flows < 100KB = %.1f%% "
        "(paper: mean %s, short/long split at 100KB)",
        d->name().c_str(), st.mean() / 1e3, 100.0 * short_flows / n,
        d->name() == "pareto-hull" ? "100KB" : "2.4MB");
  }
  std::printf("\n");
  return 0;
}
