// Resilience ablation: degrade the full-bandwidth fat-tree and the cheaper
// Xpander by failing a growing fraction of network links, then measure
// fluid-flow per-server throughput on hard (longest-matching) TMs over
// half the racks. Expanders' many short disjoint paths degrade gracefully;
// the fat-tree's structured stages lose proportionally more.
#include <cstdio>

#include "flow/throughput.hpp"
#include "flow/tm_generators.hpp"
#include "topo/failures.hpp"
#include "util.hpp"

using namespace flexnets;

int main() {
  bench::banner("Ablation: link failures",
                "fluid throughput under growing link-failure fractions");

  const bool full = core::repro_full();
  auto topos = bench::section64_topologies(full);
  const double eps = full ? 0.1 : 0.05;

  TextTable t({"failed_fraction", "fat_tree_tput", "fat_tree_links",
               "xpander_tput", "xpander_links"});
  for (const double f : {0.0, 0.05, 0.10, 0.20, 0.30}) {
    const auto ft = topo::with_failed_links(topos.fat_tree.topo, f, 7);
    const auto xp = topo::with_failed_links(topos.xpander, f, 7);

    const auto ft_active =
        flow::pick_active_racks(ft, static_cast<int>(ft.tors().size()) / 2, 3);
    const auto xp_active =
        flow::pick_active_racks(xp, static_cast<int>(xp.tors().size()) / 2, 3);

    const double ft_tput = flow::per_server_throughput(
        ft, flow::longest_matching_tm(ft, ft_active), {eps});
    const double xp_tput = flow::per_server_throughput(
        xp, flow::longest_matching_tm(xp, xp_active), {eps});

    t.add_row({TextTable::fmt(f, 2), TextTable::fmt(ft_tput, 3),
               std::to_string(ft.num_network_links()),
               TextTable::fmt(xp_tput, 3),
               std::to_string(xp.num_network_links())});
  }
  t.print();
  std::printf(
      "\nExpected: both degrade with failures, but the Xpander -- despite\n"
      "costing ~2/3 as much -- keeps a larger share of its healthy\n"
      "throughput (expander path diversity), narrowing or inverting the\n"
      "gap as failures mount.\n");
  return 0;
}
