#include "util.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "topo/xpander.hpp"

namespace flexnets::bench {

void banner(const std::string& figure, const std::string& description) {
  std::printf("=== %s — %s ===\n", figure.c_str(), description.c_str());
  std::printf("scale: %s (set REPRO_FULL=1 for paper-scale parameters)\n\n",
              core::repro_full() ? "PAPER-SCALE" : "scaled-down default");
}

int parse_threads(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      value = argv[i] + 10;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      value = argv[i + 1];
    } else {
      continue;
    }
    const int n = std::atoi(value);
    if (n <= 0) {
      std::fprintf(stderr,
                   "error: --threads wants a positive integer, got '%s'\n",
                   value);
      std::exit(2);
    }
    return n;
  }
  return 0;  // auto: FLEXNETS_THREADS env, else hardware_concurrency
}

std::string health_note(const core::PacketResult& r) {
  std::string s;
  if (r.fct.incomplete_flows > 0) {
    s += "incomplete=" + std::to_string(r.fct.incomplete_flows) + " ";
  }
  if (r.drops > 0) s += "drops=" + std::to_string(r.drops);
  return s.empty() ? "ok" : s;
}

core::PacketSimOptions default_packet_options(bool full) {
  core::PacketSimOptions opts;
  if (full) {
    // Paper section 6.4: statistics over flows starting in [0.5s, 1.5s).
    opts.window_begin = 500 * kMillisecond;
    opts.window_end = 1500 * kMillisecond;
    opts.arrival_tail = 500 * kMillisecond;
    opts.hard_stop = 120 * kSecond;
  } else {
    opts.window_begin = 20 * kMillisecond;
    opts.window_end = 50 * kMillisecond;
    opts.arrival_tail = 15 * kMillisecond;
    opts.hard_stop = 20 * kSecond;
  }
  return opts;
}

int active_server_count(const topo::Topology& t,
                        const workload::PairDistribution& pairs) {
  int n = 0;
  for (const auto r : pairs.active_racks()) n += t.servers_per_switch[r];
  return n;
}

core::PacketResult run_point(const Scenario& s,
                             const workload::PairDistribution& pairs,
                             const workload::FlowSizeDistribution& sizes,
                             double rate_per_active_server,
                             std::uint64_t seed, bool full) {
  core::PacketSimOptions opts = default_packet_options(full);
  opts.arrival_rate =
      rate_per_active_server * active_server_count(*s.topo, pairs);
  opts.net.routing.mode = s.mode;
  opts.net.server_link.rate = s.server_rate;
  opts.seed = seed;
  return core::run_packet_experiment(*s.topo, pairs, sizes, opts);
}

Section64 section64_topologies(bool full) {
  Section64 out;
  if (full) {
    out.fat_tree = topo::fat_tree(16);
    auto x = topo::xpander(11, 18, 5, /*seed=*/1);  // 216 sw, 1080 servers
    out.xpander = std::move(x.topo);
  } else {
    out.fat_tree = topo::fat_tree(8);
    auto x = topo::xpander(5, 9, 3, /*seed=*/1);  // 54 sw, 162 servers
    out.xpander = std::move(x.topo);
  }
  return out;
}

void print_three_panels(const std::string& sweep_label,
                        const std::vector<Scenario>& scenarios,
                        const std::vector<SweepRow>& rows) {
  const struct Panel {
    const char* title;
    double (*get)(const core::PacketResult&);
    int precision;
  } panels[] = {
      {"(a) average FCT (ms)",
       [](const core::PacketResult& r) { return r.fct.avg_fct_ms; }, 3},
      {"(b) 99th %-ile FCT, flows < 100KB (ms)",
       [](const core::PacketResult& r) { return r.fct.p99_short_fct_ms; }, 3},
      {"(c) avg throughput, flows >= 100KB (Gbps)",
       [](const core::PacketResult& r) { return r.fct.avg_long_tput_gbps; },
       3},
  };
  for (const auto& panel : panels) {
    std::printf("%s\n", panel.title);
    std::vector<std::string> header{sweep_label};
    for (const auto& s : scenarios) header.push_back(s.label);
    header.push_back("health");
    TextTable t(header);
    for (const auto& row : rows) {
      std::vector<std::string> cells{TextTable::fmt(row.x, 2)};
      std::string health;
      for (const auto& r : row.results) {
        cells.push_back(TextTable::fmt(panel.get(r), panel.precision));
        const auto note = health_note(r);
        if (note != "ok" && health.empty()) health = note;
      }
      cells.push_back(health.empty() ? "ok" : health);
      t.add_row(std::move(cells));
    }
    t.print();
    std::printf("\n");
  }
}

}  // namespace flexnets::bench
