#include "util.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/digest.hpp"
#include "flow/throughput.hpp"
#include "sweep/coordinator.hpp"
#include "sweep/worker.hpp"
#include "topo/xpander.hpp"

namespace flexnets::bench {

void banner(const std::string& figure, const std::string& description) {
  std::printf("=== %s — %s ===\n", figure.c_str(), description.c_str());
  std::printf("scale: %s (set REPRO_FULL=1 for paper-scale parameters)\n\n",
              core::repro_full() ? "PAPER-SCALE" : "scaled-down default");
}

int parse_threads(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      value = argv[i] + 10;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      value = argv[i + 1];
    } else {
      continue;
    }
    const int n = std::atoi(value);
    if (n <= 0) {
      std::fprintf(stderr,
                   "error: --threads wants a positive integer, got '%s'\n",
                   value);
      std::exit(2);
    }
    return n;
  }
  return 0;  // auto: FLEXNETS_THREADS env, else hardware_concurrency
}

ResilientFlags parse_resilient_flags(int argc, char** argv) {
  ResilientFlags flags;
  const auto want_value = [&](int i, const char* name) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "error: %s wants a value\n", name);
      std::exit(2);
    }
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--journal") == 0) {
      flags.journal_path = want_value(i, "--journal");
    } else if (std::strncmp(argv[i], "--journal=", 10) == 0) {
      flags.journal_path = argv[i] + 10;
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      flags.resume_paths.emplace_back(want_value(i, "--resume"));
    } else if (std::strncmp(argv[i], "--resume=", 9) == 0) {
      flags.resume_paths.emplace_back(argv[i] + 9);
    } else if (std::strcmp(argv[i], "--point-sleep-ms") == 0 ||
               std::strncmp(argv[i], "--point-sleep-ms=", 17) == 0) {
      const char* value = argv[i][16] == '='
                              ? argv[i] + 17
                              : want_value(i, "--point-sleep-ms");
      flags.point_sleep_ms = std::atoi(value);
      if (flags.point_sleep_ms < 0) {
        std::fprintf(stderr, "error: --point-sleep-ms wants >= 0, got '%s'\n",
                     value);
        std::exit(2);
      }
    }
  }
  // Resuming continues the newest named file unless a different journal
  // was named.
  if (!flags.resume_paths.empty() && flags.journal_path.empty()) {
    flags.journal_path = flags.resume_paths.back();
  }
  return flags;
}

void init_resilient_state(const ResilientFlags& flags,
                          ResilientState* state) {
  if (!flags.resume_paths.empty()) {
    const auto records = core::merge_journals(flags.resume_paths);
    if (!records.ok()) {
      std::fprintf(stderr, "error: cannot resume: %s\n",
                   records.status().to_string().c_str());
      std::exit(2);
    }
    state->completed = core::index_by_key(*records);
    std::printf("resume: %zu journaled points in %zu file(s)\n",
                state->completed.size(), flags.resume_paths.size());
  }
  if (!flags.journal_path.empty()) {
    const auto st = state->journal.open(flags.journal_path);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.to_string().c_str());
      std::exit(2);
    }
  }
}

namespace {

void sleep_point(int ms) {
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace

std::vector<core::FluidPointRecord> sweep_with_flags(
    const topo::Topology& topo, core::FluidSweepOptions opts,
    const std::string& key_prefix, ResilientState* state,
    int point_sleep_ms) {
  if (point_sleep_ms > 0) {
    opts.point_hook = [point_sleep_ms](std::size_t) {
      sleep_point(point_sleep_ms);
    };
  }
  core::ResilientSweepOptions ropts;
  ropts.sweep = std::move(opts);
  ropts.journal = &state->journal;
  ropts.completed = &state->completed;
  ropts.key_prefix = key_prefix;
  return core::fluid_sweep_resilient(topo, ropts);
}

std::vector<core::JournalRecord> run_grid_resilient(
    std::size_t n, int threads, const std::string& key_prefix,
    ResilientState* state, int point_sleep_ms,
    const std::function<std::vector<std::pair<std::string, double>>(
        std::size_t)>& fn) {
  std::vector<core::JournalRecord> out(n);
  const auto statuses = core::run_indexed_contained(
      n,
      [&](std::size_t i) -> Status {
        const std::string key = key_prefix + "/" + std::to_string(i);
        const auto it = state->completed.find(key);
        if (it != state->completed.end()) {
          out[i] = it->second;
          return Status(out[i].code, out[i].message);
        }
        sleep_point(point_sleep_ms);
        core::JournalRecord rec;
        rec.key = key;
        rec.values = fn(i);  // an escape here leaves out[i] keyless
        FLEXNETS_CHECK(state->journal.append(rec).ok(),
                       "journal append failed");
        out[i] = std::move(rec);
        return {};
      },
      threads);
  // A point whose computation escaped never journaled: record its captured
  // status so a resume does not retry a known-poisoned point forever.
  for (std::size_t i = 0; i < n; ++i) {
    if (!statuses[i].ok() && out[i].key.empty()) {
      out[i].key = key_prefix + "/" + std::to_string(i);
      out[i].code = statuses[i].code();
      out[i].message = statuses[i].message();
      (void)state->journal.append(out[i]);
    }
  }
  return out;
}

ShardFlags parse_shard_flags(int argc, char** argv) {
  ShardFlags flags;
  const auto want_int = [](const char* value, const char* name) -> int {
    const int n = std::atoi(value);
    if (n <= 0) {
      std::fprintf(stderr, "error: %s wants a positive integer, got '%s'\n",
                   name, value);
      std::exit(2);
    }
    return n;
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      flags.workers = want_int(argv[i + 1], "--workers");
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      flags.workers = want_int(argv[i] + 10, "--workers");
    } else if (std::strcmp(argv[i], "--max-attempts") == 0 && i + 1 < argc) {
      flags.max_attempts = want_int(argv[i + 1], "--max-attempts");
    } else if (std::strncmp(argv[i], "--max-attempts=", 15) == 0) {
      flags.max_attempts = want_int(argv[i] + 15, "--max-attempts");
    } else if (std::strncmp(argv[i], "--sweep-worker=", 15) == 0) {
      flags.worker_grid = argv[i] + 15;
    }
  }
  return flags;
}

std::vector<std::string> worker_args(int argc, char** argv,
                                     const std::string& key_prefix) {
  std::vector<std::string> out;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--workers" || a == "--max-attempts" || a == "--journal" ||
        a == "--resume") {
      ++i;  // the flag's value is coordinator-only too
      continue;
    }
    if (a.rfind("--workers=", 0) == 0 || a.rfind("--max-attempts=", 0) == 0 ||
        a.rfind("--journal=", 0) == 0 || a.rfind("--resume=", 0) == 0 ||
        a.rfind("--sweep-worker=", 0) == 0) {
      continue;
    }
    if (a == "--json") {
      if (i + 1 < argc && argv[i + 1][0] != '-') ++i;  // optional path
      continue;
    }
    out.push_back(a);
  }
  out.push_back("--sweep-worker=" + key_prefix);
  return out;
}

namespace {

// Shared coordinator-side launch: spawn workers off this binary, run the
// grid to completion, die loudly if orchestration itself broke (per-point
// failures are structured records, not orchestration errors).
std::vector<core::JournalRecord> run_coordinator(
    int argc, char** argv, std::size_t n, const std::string& key_prefix,
    ResilientState* state, const ShardFlags& sflags) {
  sweep::ShardedOptions sopts;
  sopts.exec_path = "/proc/self/exe";
  sopts.args = worker_args(argc, argv, key_prefix);
  sopts.workers = sflags.workers;
  sopts.max_attempts = sflags.max_attempts;
  sopts.journal = &state->journal;
  sopts.completed = &state->completed;
  sopts.key_prefix = key_prefix;
  auto result = sweep::run_sharded(n, sopts);
  if (!result.ok()) {
    std::fprintf(stderr, "error: sharded sweep '%s' failed: %s\n",
                 key_prefix.c_str(), result.status().to_string().c_str());
    std::exit(2);
  }
  std::printf(
      "sharded %s: %d workers | %zu computed, %zu restored, %zu retries, "
      "%zu quarantined, %zu worker deaths\n",
      key_prefix.c_str(), sflags.workers, result->computed, result->restored,
      result->retries, result->quarantined, result->worker_deaths);
  return std::move(result->records);
}

}  // namespace

std::vector<core::JournalRecord> run_grid_resilient_sharded(
    int argc, char** argv, std::size_t n, int threads,
    const std::string& key_prefix, ResilientState* state,
    const ResilientFlags& rflags, const ShardFlags& sflags,
    const std::function<std::vector<std::pair<std::string, double>>(
        std::size_t)>& fn) {
  if (!sflags.worker_grid.empty()) {
    if (sflags.worker_grid != key_prefix) {
      // A worker targeting another grid of this binary: placeholder
      // records keep control flow moving toward the target grid.
      std::vector<core::JournalRecord> out(n);
      for (std::size_t i = 0; i < n; ++i) {
        out[i].key = key_prefix + "/" + std::to_string(i);
      }
      return out;
    }
    sweep::WorkerOptions wopts;
    wopts.num_points = n;
    wopts.key_prefix = key_prefix;
    wopts.fn = [&](std::size_t i) {
      sleep_point(rflags.point_sleep_ms);
      core::JournalRecord rec;
      rec.key = key_prefix + "/" + std::to_string(i);
      rec.values = fn(i);
      return rec;
    };
    std::exit(sweep::run_worker(wopts));
  }
  if (sflags.workers > 1) {
    return run_coordinator(argc, argv, n, key_prefix, state, sflags);
  }
  return run_grid_resilient(n, threads, key_prefix, state,
                            rflags.point_sleep_ms, fn);
}

std::vector<core::FluidPointRecord> sweep_with_flags_sharded(
    int argc, char** argv, const topo::Topology& topo,
    core::FluidSweepOptions opts, const std::string& key_prefix,
    ResilientState* state, const ResilientFlags& rflags,
    const ShardFlags& sflags) {
  const std::size_t n = opts.fractions.size();
  if (!sflags.worker_grid.empty()) {
    if (sflags.worker_grid != key_prefix) {
      return std::vector<core::FluidPointRecord>(n);
    }
    const auto cache = flow::build_throughput_cache(topo);
    sweep::WorkerOptions wopts;
    wopts.num_points = n;
    wopts.key_prefix = key_prefix;
    wopts.fn = [&](std::size_t i) {
      sleep_point(rflags.point_sleep_ms);
      return core::to_journal_record(
          key_prefix, i, core::fluid_sweep_point(topo, cache, opts, i));
    };
    std::exit(sweep::run_worker(wopts));
  }
  if (sflags.workers > 1) {
    const auto records =
        run_coordinator(argc, argv, n, key_prefix, state, sflags);
    std::vector<core::FluidPointRecord> out;
    out.reserve(records.size());
    for (const auto& rec : records) {
      out.push_back(core::from_journal_record(rec));
    }
    return out;
  }
  return sweep_with_flags(topo, std::move(opts), key_prefix, state,
                          rflags.point_sleep_ms);
}

std::uint64_t grid_digest(const std::vector<core::JournalRecord>& records) {
  Digest d;
  for (const auto& r : records) {
    for (const auto& [name, v] : r.values) {
      (void)name;
      d.mix_double(v);
    }
  }
  return d.value();
}

void print_digest_line(const std::string& label, std::uint64_t digest,
                       std::size_t points, std::size_t failed) {
  std::printf("digest %s: %016llx (%zu points, %zu failed)\n", label.c_str(),
              static_cast<unsigned long long>(digest), points, failed);
}

std::size_t count_failed(const std::vector<core::JournalRecord>& records) {
  std::size_t n = 0;
  for (const auto& r : records) n += r.ok() ? 0 : 1;
  return n;
}

std::size_t count_failed(const std::vector<core::FluidPointRecord>& records) {
  std::size_t n = 0;
  for (const auto& r : records) n += r.status.ok() ? 0 : 1;
  return n;
}

std::string health_note(const core::PacketResult& r) {
  std::string s;
  if (r.fct.incomplete_flows > 0) {
    s += "incomplete=" + std::to_string(r.fct.incomplete_flows) + " ";
  }
  if (r.drops > 0) s += "drops=" + std::to_string(r.drops);
  return s.empty() ? "ok" : s;
}

core::PacketSimOptions default_packet_options(bool full) {
  core::PacketSimOptions opts;
  if (full) {
    // Paper section 6.4: statistics over flows starting in [0.5s, 1.5s).
    opts.window_begin = 500 * kMillisecond;
    opts.window_end = 1500 * kMillisecond;
    opts.arrival_tail = 500 * kMillisecond;
    opts.hard_stop = 120 * kSecond;
  } else {
    opts.window_begin = 20 * kMillisecond;
    opts.window_end = 50 * kMillisecond;
    opts.arrival_tail = 15 * kMillisecond;
    opts.hard_stop = 20 * kSecond;
  }
  return opts;
}

int active_server_count(const topo::Topology& t,
                        const workload::PairDistribution& pairs) {
  int n = 0;
  for (const auto r : pairs.active_racks()) n += t.servers_per_switch[r];
  return n;
}

core::PacketResult run_point(const Scenario& s,
                             const workload::PairDistribution& pairs,
                             const workload::FlowSizeDistribution& sizes,
                             double rate_per_active_server,
                             std::uint64_t seed, bool full) {
  core::PacketSimOptions opts = default_packet_options(full);
  opts.arrival_rate =
      rate_per_active_server * active_server_count(*s.topo, pairs);
  opts.net.routing.mode = s.mode;
  opts.net.server_link.rate = s.server_rate;
  opts.seed = seed;
  opts.threads = s.threads;
  return core::run_packet_experiment(*s.topo, pairs, sizes, opts);
}

Section64 section64_topologies(bool full) {
  Section64 out;
  if (full) {
    out.fat_tree = topo::fat_tree(16);
    auto x = topo::xpander(11, 18, 5, /*seed=*/1);  // 216 sw, 1080 servers
    out.xpander = std::move(x.topo);
  } else {
    out.fat_tree = topo::fat_tree(8);
    auto x = topo::xpander(5, 9, 3, /*seed=*/1);  // 54 sw, 162 servers
    out.xpander = std::move(x.topo);
  }
  return out;
}

void print_three_panels(const std::string& sweep_label,
                        const std::vector<Scenario>& scenarios,
                        const std::vector<SweepRow>& rows) {
  const struct Panel {
    const char* title;
    double (*get)(const core::PacketResult&);
    int precision;
  } panels[] = {
      {"(a) average FCT (ms)",
       [](const core::PacketResult& r) { return r.fct.avg_fct_ms; }, 3},
      {"(b) 99th %-ile FCT, flows < 100KB (ms)",
       [](const core::PacketResult& r) { return r.fct.p99_short_fct_ms; }, 3},
      {"(c) avg throughput, flows >= 100KB (Gbps)",
       [](const core::PacketResult& r) { return r.fct.avg_long_tput_gbps; },
       3},
  };
  for (const auto& panel : panels) {
    std::printf("%s\n", panel.title);
    std::vector<std::string> header{sweep_label};
    for (const auto& s : scenarios) header.push_back(s.label);
    header.push_back("health");
    TextTable t(header);
    for (const auto& row : rows) {
      std::vector<std::string> cells{TextTable::fmt(row.x, 2)};
      std::string health;
      for (const auto& r : row.results) {
        cells.push_back(TextTable::fmt(panel.get(r), panel.precision));
        const auto note = health_note(r);
        if (note != "ok" && health.empty()) health = note;
      }
      cells.push_back(health.empty() ? "ok" : health);
      t.add_row(std::move(cells));
    }
    t.print();
    std::printf("\n");
  }
}

}  // namespace flexnets::bench
