// Orchestrator overhead benchmark: points/second through the sharded
// sweep service (src/sweep) at workers={1,4}, plus the cost of the retry
// machinery when workers are crash-injected mid-grid. Writes
// BENCH_SWEEP.json (--json, tools/ci.sh perf smoke) so the orchestration
// overhead trajectory is recorded in git alongside BENCH_MCF/BENCH_SIM.
//
// The grid is synthetic — a fixed hash spin per point — so the numbers
// isolate orchestration cost (spawn, leases, pipes, journal merge) from
// solver cost, and the whole bench stays under a couple of seconds.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/journal.hpp"
#include "perf_json.hpp"
#include "sweep/coordinator.hpp"
#include "sweep/worker.hpp"

namespace {

using namespace flexnets;

constexpr std::size_t kPoints = 96;
constexpr const char kPrefix[] = "bsw";

// ~1e5 dependent hashes per point: enough work that points/sec is not
// pure pipe latency, small enough that the bench finishes in seconds.
core::JournalRecord point(std::size_t i) {
  std::uint64_t acc = hash_words(99, i);
  for (std::uint64_t k = 0; k < 100000; ++k) acc = hash_words(acc, k);
  return {std::string(kPrefix) + "/" + std::to_string(i),
          StatusCode::kOk,
          "",
          {{"acc", static_cast<double>(acc % 1000000)},
           {"i", static_cast<double>(i)}}};
}

struct RunSample {
  double ns = 0;
  sweep::ShardedResult result;
};

RunSample run_once(int workers) {
  sweep::ShardedOptions opts;
  opts.exec_path = "/proc/self/exe";
  opts.args = {std::string("--sweep-worker=") + kPrefix};
  opts.workers = workers;
  opts.key_prefix = kPrefix;
  opts.backoff_base_ms = 1;
  RunSample s;
  const double begin = bench::monotonic_ns();
  auto r = sweep::run_sharded(kPoints, opts);
  s.ns = bench::monotonic_ns() - begin;
  if (!r.ok()) {
    std::fprintf(stderr, "bench_sweep: run_sharded(workers=%d): %s\n",
                 workers, r.status().to_string().c_str());
    std::exit(1);
  }
  s.result = std::move(*r);
  return s;
}

bench::PerfCase make_case(const std::string& name, const RunSample& s) {
  bench::PerfCase c;
  c.name = name;
  c.add("ns_per_op", s.ns / static_cast<double>(kPoints));
  c.add("points_per_sec", static_cast<double>(kPoints) / (s.ns * 1e-9));
  c.add("retries", static_cast<double>(s.result.retries));
  c.add("worker_deaths", static_cast<double>(s.result.worker_deaths));
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  std::string grid;
  if (sweep::worker_grid_flag(argc, argv, &grid)) {
    if (grid != kPrefix) return 2;
    sweep::WorkerOptions opts;
    opts.num_points = kPoints;
    opts.key_prefix = kPrefix;
    opts.fn = [](std::size_t i) { return point(i); };
    return sweep::run_worker(opts);
  }

  const auto w1 = run_once(1);
  const auto w4 = run_once(4);
  // Retry overhead: crash three workers mid-grid (first attempt only) and
  // compare against the clean 4-worker run. Captures respawn + backoff +
  // recompute cost, not solver cost.
  setenv("FLEXNETS_CRASH_AT", "5,17,41", 1);
  const auto w4c = run_once(4);
  unsetenv("FLEXNETS_CRASH_AT");

  // Guard the headline contract while we are here: every execution
  // history must merge to the identical record list.
  auto strip = [](std::vector<core::JournalRecord> v) {
    for (auto& r : v) r.attempt = 0;
    return v;
  };
  if (strip(w4.result.records) != strip(w1.result.records) ||
      strip(w4c.result.records) != strip(w1.result.records)) {
    std::fprintf(stderr, "bench_sweep: sharded records diverged\n");
    return 1;
  }
  if (w4c.result.retries < 3 || w4c.result.worker_deaths < 3) {
    std::fprintf(stderr,
                 "bench_sweep: crash injection did not fire (retries=%zu, "
                 "deaths=%zu)\n",
                 w4c.result.retries, w4c.result.worker_deaths);
    return 1;
  }

  std::vector<bench::PerfCase> cases;
  cases.push_back(make_case("sweep_workers1", w1));
  cases.push_back(make_case("sweep_workers4", w4));
  auto crash = make_case("sweep_workers4_crash3", w4c);
  crash.add("retry_overhead_ratio", w4c.ns / w4.ns);
  cases.push_back(crash);

  for (const auto& c : cases) {
    std::printf("%-24s", c.name.c_str());
    for (const auto& [k, v] : c.metrics) std::printf("  %s=%.1f", k.c_str(), v);
    std::printf("\n");
  }

  std::string json_path;
  if (bench::parse_json_flag(argc, argv, "BENCH_SWEEP.json", &json_path)) {
    if (!bench::write_perf_json(json_path, "sweep_orchestrator", cases)) {
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
