// Shared helpers for the figure-reproduction benchmark binaries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/table.hpp"
#include "core/experiment.hpp"
#include "core/fluid_runner.hpp"
#include "core/journal.hpp"
#include "core/parallel.hpp"
#include "routing/strategy.hpp"
#include "topo/fat_tree.hpp"
#include "topo/topology.hpp"

namespace flexnets::bench {

// Prints the standard experiment banner: which paper item this binary
// regenerates and whether it runs at paper scale (REPRO_FULL=1) or the
// scaled-down default.
void banner(const std::string& figure, const std::string& description);

// Parses `--threads N` / `--threads=N` from a bench binary's argv.
// Returns 0 when absent, meaning auto (FLEXNETS_THREADS env, else
// hardware_concurrency — core::resolve_threads). Exits with usage on a
// malformed value so a typo cannot silently serialize a long run.
int parse_threads(int argc, char** argv);

// Evaluates fn(i) for each of the n grid cells on `threads` workers
// (core::run_indexed semantics) and returns the results in index order.
// fn must depend only on its index, so the grid's output is independent
// of thread count and scheduling.
template <typename F,
          typename T = std::invoke_result_t<std::decay_t<F>, std::size_t>>
std::vector<T> run_grid(std::size_t n, int threads, F&& fn) {
  std::vector<T> out(n);
  core::run_indexed(
      n, [&](std::size_t i) { out[i] = fn(i); }, threads);
  return out;
}

// ---------------------------------------------------------------------------
// Resilient execution flags shared by the fig benches (core/journal.hpp):
//   --journal <path>        append each finished grid point durably
//   --resume <path>         skip points already in <path>, append the rest
//                           to the same file (implies --journal <path>)
//   --point-sleep-ms <n>    pause inside each *computed* point; gives the
//                           CI kill-mid-sweep test a window to SIGKILL in
struct ResilientFlags {
  std::string journal_path;
  // --resume may repeat: partial journals (e.g. a killed coordinator's
  // merged file plus an older run's) are merged last-path-wins
  // (core::merge_journals) before any point is skipped.
  std::vector<std::string> resume_paths;
  int point_sleep_ms = 0;
};
// Exits with usage on a malformed value, like parse_threads.
ResilientFlags parse_resilient_flags(int argc, char** argv);

// ---------------------------------------------------------------------------
// Sharded execution flags (src/sweep): the grid is partitioned into
// single-point leases served by worker subprocesses — this same binary
// re-exec'ed with --sweep-worker=<grid>.
//   --workers N        coordinator mode with N worker subprocesses
//   --max-attempts N   retries before a crashy point is quarantined
//   --sweep-worker=G   (internal) serve grid G's leases over fds 3/4
struct ShardFlags {
  int workers = 0;  // 0/1 = in-process execution (no subprocesses)
  int max_attempts = 3;
  std::string worker_grid;  // nonempty: this process IS a sweep worker
};
// Exits with usage on a malformed value, like parse_threads.
ShardFlags parse_shard_flags(int argc, char** argv);

// This process's argv rebuilt for a worker: coordinator-only flags
// (--workers, --max-attempts, --journal, --resume, --json) are stripped
// and --sweep-worker=<key_prefix> appended. Everything else — scale,
// seeds, --threads, --point-sleep-ms — passes through unchanged so the
// worker rebuilds the exact same grid.
std::vector<std::string> worker_args(int argc, char** argv,
                                     const std::string& key_prefix);

// The journal writer plus the completed-point index a resumed run skips.
// Inactive (no-op journal, empty index) when the flags are empty.
struct ResilientState {
  core::Journal journal;
  std::map<std::string, core::JournalRecord> completed;
};
// Opens the journal / loads the resume index per the flags. Exits with a
// message on an unopenable journal or a corrupt resume file (a torn final
// line from a kill is fine — it is dropped and that point reruns).
void init_resilient_state(const ResilientFlags& flags, ResilientState* state);

// fluid_sweep_resilient driven by the shared flags: restores completed
// points from state->completed, journals under "<key_prefix>/<i>", and
// sleeps point_sleep_ms inside each computed point.
std::vector<core::FluidPointRecord> sweep_with_flags(
    const topo::Topology& topo, core::FluidSweepOptions opts,
    const std::string& key_prefix, ResilientState* state,
    int point_sleep_ms);

// Journaled fault-contained grid for the analytic benches: fn(i) returns
// the point's named values; a failed point keeps a structured non-ok code
// in its record while the rest of the grid completes.
std::vector<core::JournalRecord> run_grid_resilient(
    std::size_t n, int threads, const std::string& key_prefix,
    ResilientState* state, int point_sleep_ms,
    const std::function<std::vector<std::pair<std::string, double>>(
        std::size_t)>& fn);

// run_grid_resilient behind the sharding switch: with --workers N the
// grid runs across N worker subprocesses (sweep::run_sharded) and the
// coordinator alone writes the merged journal; in worker mode this call
// serves leases for its grid and exits the process. fn(i) must depend
// only on i — that is what makes the merged result bit-identical to the
// in-process run for ANY worker count, kill schedule, or retry history.
std::vector<core::JournalRecord> run_grid_resilient_sharded(
    int argc, char** argv, std::size_t n, int threads,
    const std::string& key_prefix, ResilientState* state,
    const ResilientFlags& rflags, const ShardFlags& sflags,
    const std::function<std::vector<std::pair<std::string, double>>(
        std::size_t)>& fn);

// sweep_with_flags behind the same switch, for the fluid-sweep benches:
// workers evaluate core::fluid_sweep_point per lease, so the sharded
// digest equals the serial fluid_sweep_digest bit for bit.
std::vector<core::FluidPointRecord> sweep_with_flags_sharded(
    int argc, char** argv, const topo::Topology& topo,
    core::FluidSweepOptions opts, const std::string& key_prefix,
    ResilientState* state, const ResilientFlags& rflags,
    const ShardFlags& sflags);

// Order-sensitive digest over every record's values (exact double bits) —
// the analytic-grid analogue of core::fluid_sweep_digest.
std::uint64_t grid_digest(const std::vector<core::JournalRecord>& records);

// The "digest <label>: <16 hex digits> (N points, F failed)" line the CI
// resilience gate greps to compare a killed-and-resumed run against an
// uninterrupted one.
void print_digest_line(const std::string& label, std::uint64_t digest,
                       std::size_t points, std::size_t failed);

std::size_t count_failed(const std::vector<core::JournalRecord>& records);
std::size_t count_failed(const std::vector<core::FluidPointRecord>& records);

// Formats a PacketResult row note (drops / incomplete counts) for sanity.
std::string health_note(const core::PacketResult& r);

// A packet-simulation contender: a topology plus a routing configuration.
struct Scenario {
  std::string label;
  const topo::Topology* topo = nullptr;
  routing::RoutingMode mode = routing::RoutingMode::kEcmp;
  RateBps server_rate = 10 * kGbps;  // raise to model "no server bottleneck"
  // Packet-engine workers: 1 = serial, > 1 = the conservative PDES engine
  // (sim/pdes/), which reproduces the serial results bit for bit -- this
  // is purely a wall-clock knob.
  int threads = 1;
};

// Measurement window used by the packet benches. The paper measures flows
// starting in [0.5s, 1.5s); the scaled default uses [20ms, 60ms).
core::PacketSimOptions default_packet_options(bool full);

// Runs one scenario point: arrival rate is `rate_per_active_server` times
// the number of servers on the pair distribution's active racks.
core::PacketResult run_point(const Scenario& s,
                             const workload::PairDistribution& pairs,
                             const workload::FlowSizeDistribution& sizes,
                             double rate_per_active_server,
                             std::uint64_t seed, bool full);

int active_server_count(const topo::Topology& t,
                        const workload::PairDistribution& pairs);

// The section 6.4 topology pair: a full-bandwidth fat-tree baseline and an
// Xpander built at ~33% lower cost with at least as many servers.
//   full:   fat-tree k=16 (1024 servers) vs Xpander 216x16p (1080 servers)
//   scaled: fat-tree k=8  (128 servers)  vs Xpander  54x8p  (162 servers)
struct Section64 {
  topo::FatTree fat_tree;
  topo::Topology xpander;
};
Section64 section64_topologies(bool full);

// Prints the paper's three standard panels for a sweep: average FCT (ms),
// 99th-percentile short-flow FCT (ms), and average long-flow throughput
// (Gbps). `sweep_label` names the x column; rows are (x, per-scenario
// results).
struct SweepRow {
  double x = 0.0;
  std::vector<core::PacketResult> results;  // one per scenario
};
void print_three_panels(const std::string& sweep_label,
                        const std::vector<Scenario>& scenarios,
                        const std::vector<SweepRow>& rows);

}  // namespace flexnets::bench
