// Shared helpers for the figure-reproduction benchmark binaries.
#pragma once

#include <cstddef>
#include <string>
#include <type_traits>
#include <vector>

#include "common/table.hpp"
#include "core/experiment.hpp"
#include "core/parallel.hpp"
#include "routing/strategy.hpp"
#include "topo/fat_tree.hpp"
#include "topo/topology.hpp"

namespace flexnets::bench {

// Prints the standard experiment banner: which paper item this binary
// regenerates and whether it runs at paper scale (REPRO_FULL=1) or the
// scaled-down default.
void banner(const std::string& figure, const std::string& description);

// Parses `--threads N` / `--threads=N` from a bench binary's argv.
// Returns 0 when absent, meaning auto (FLEXNETS_THREADS env, else
// hardware_concurrency — core::resolve_threads). Exits with usage on a
// malformed value so a typo cannot silently serialize a long run.
int parse_threads(int argc, char** argv);

// Evaluates fn(i) for each of the n grid cells on `threads` workers
// (core::run_indexed semantics) and returns the results in index order.
// fn must depend only on its index, so the grid's output is independent
// of thread count and scheduling.
template <typename F,
          typename T = std::invoke_result_t<std::decay_t<F>, std::size_t>>
std::vector<T> run_grid(std::size_t n, int threads, F&& fn) {
  std::vector<T> out(n);
  core::run_indexed(
      n, [&](std::size_t i) { out[i] = fn(i); }, threads);
  return out;
}

// Formats a PacketResult row note (drops / incomplete counts) for sanity.
std::string health_note(const core::PacketResult& r);

// A packet-simulation contender: a topology plus a routing configuration.
struct Scenario {
  std::string label;
  const topo::Topology* topo = nullptr;
  routing::RoutingMode mode = routing::RoutingMode::kEcmp;
  RateBps server_rate = 10 * kGbps;  // raise to model "no server bottleneck"
};

// Measurement window used by the packet benches. The paper measures flows
// starting in [0.5s, 1.5s); the scaled default uses [20ms, 60ms).
core::PacketSimOptions default_packet_options(bool full);

// Runs one scenario point: arrival rate is `rate_per_active_server` times
// the number of servers on the pair distribution's active racks.
core::PacketResult run_point(const Scenario& s,
                             const workload::PairDistribution& pairs,
                             const workload::FlowSizeDistribution& sizes,
                             double rate_per_active_server,
                             std::uint64_t seed, bool full);

int active_server_count(const topo::Topology& t,
                        const workload::PairDistribution& pairs);

// The section 6.4 topology pair: a full-bandwidth fat-tree baseline and an
// Xpander built at ~33% lower cost with at least as many servers.
//   full:   fat-tree k=16 (1024 servers) vs Xpander 216x16p (1080 servers)
//   scaled: fat-tree k=8  (128 servers)  vs Xpander  54x8p  (162 servers)
struct Section64 {
  topo::FatTree fat_tree;
  topo::Topology xpander;
};
Section64 section64_topologies(bool full);

// Prints the paper's three standard panels for a sweep: average FCT (ms),
// 99th-percentile short-flow FCT (ms), and average long-flow throughput
// (Gbps). `sweep_label` names the x column; rows are (x, per-scenario
// results).
struct SweepRow {
  double x = 0.0;
  std::vector<core::PacketResult> results;  // one per scenario
};
void print_three_panels(const std::string& sweep_label,
                        const std::vector<Scenario>& scenarios,
                        const std::vector<SweepRow>& rows);

}  // namespace flexnets::bench
