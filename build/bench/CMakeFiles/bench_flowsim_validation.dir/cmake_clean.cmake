file(REMOVE_RECURSE
  "CMakeFiles/bench_flowsim_validation.dir/bench_flowsim_validation.cpp.o"
  "CMakeFiles/bench_flowsim_validation.dir/bench_flowsim_validation.cpp.o.d"
  "CMakeFiles/bench_flowsim_validation.dir/util.cpp.o"
  "CMakeFiles/bench_flowsim_validation.dir/util.cpp.o.d"
  "bench_flowsim_validation"
  "bench_flowsim_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flowsim_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
