# Empty compiler generated dependencies file for bench_ablation_hyb.
# This may be replaced when dependencies are built.
