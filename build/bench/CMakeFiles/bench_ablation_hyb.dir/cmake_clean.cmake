file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hyb.dir/bench_ablation_hyb.cpp.o"
  "CMakeFiles/bench_ablation_hyb.dir/bench_ablation_hyb.cpp.o.d"
  "CMakeFiles/bench_ablation_hyb.dir/util.cpp.o"
  "CMakeFiles/bench_ablation_hyb.dir/util.cpp.o.d"
  "bench_ablation_hyb"
  "bench_ablation_hyb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hyb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
