# Empty dependencies file for bench_toy41.
# This may be replaced when dependencies are built.
