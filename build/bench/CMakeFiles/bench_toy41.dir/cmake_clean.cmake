file(REMOVE_RECURSE
  "CMakeFiles/bench_toy41.dir/bench_toy41.cpp.o"
  "CMakeFiles/bench_toy41.dir/bench_toy41.cpp.o.d"
  "CMakeFiles/bench_toy41.dir/util.cpp.o"
  "CMakeFiles/bench_toy41.dir/util.cpp.o.d"
  "bench_toy41"
  "bench_toy41.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_toy41.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
