file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5b.dir/bench_fig5b.cpp.o"
  "CMakeFiles/bench_fig5b.dir/bench_fig5b.cpp.o.d"
  "CMakeFiles/bench_fig5b.dir/util.cpp.o"
  "CMakeFiles/bench_fig5b.dir/util.cpp.o.d"
  "bench_fig5b"
  "bench_fig5b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
