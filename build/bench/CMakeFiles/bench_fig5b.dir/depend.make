# Empty dependencies file for bench_fig5b.
# This may be replaced when dependencies are built.
