# Empty compiler generated dependencies file for bench_fig9_flowlevel.
# This may be replaced when dependencies are built.
