file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_flowlevel.dir/bench_fig9_flowlevel.cpp.o"
  "CMakeFiles/bench_fig9_flowlevel.dir/bench_fig9_flowlevel.cpp.o.d"
  "CMakeFiles/bench_fig9_flowlevel.dir/util.cpp.o"
  "CMakeFiles/bench_fig9_flowlevel.dir/util.cpp.o.d"
  "bench_fig9_flowlevel"
  "bench_fig9_flowlevel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_flowlevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
