file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_topo.dir/micro_topo.cpp.o"
  "CMakeFiles/bench_micro_topo.dir/micro_topo.cpp.o.d"
  "bench_micro_topo"
  "bench_micro_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
