# Empty dependencies file for bench_micro_topo.
# This may be replaced when dependencies are built.
