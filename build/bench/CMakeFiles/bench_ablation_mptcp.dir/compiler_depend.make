# Empty compiler generated dependencies file for bench_ablation_mptcp.
# This may be replaced when dependencies are built.
