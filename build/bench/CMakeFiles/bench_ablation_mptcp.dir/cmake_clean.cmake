file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mptcp.dir/bench_ablation_mptcp.cpp.o"
  "CMakeFiles/bench_ablation_mptcp.dir/bench_ablation_mptcp.cpp.o.d"
  "CMakeFiles/bench_ablation_mptcp.dir/util.cpp.o"
  "CMakeFiles/bench_ablation_mptcp.dir/util.cpp.o.d"
  "bench_ablation_mptcp"
  "bench_ablation_mptcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mptcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
