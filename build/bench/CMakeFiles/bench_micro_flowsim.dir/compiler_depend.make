# Empty compiler generated dependencies file for bench_micro_flowsim.
# This may be replaced when dependencies are built.
