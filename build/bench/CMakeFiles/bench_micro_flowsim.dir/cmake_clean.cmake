file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_flowsim.dir/micro_flowsim.cpp.o"
  "CMakeFiles/bench_micro_flowsim.dir/micro_flowsim.cpp.o.d"
  "bench_micro_flowsim"
  "bench_micro_flowsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_flowsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
