# Empty compiler generated dependencies file for bench_obs1.
# This may be replaced when dependencies are built.
