file(REMOVE_RECURSE
  "CMakeFiles/bench_obs1.dir/bench_obs1.cpp.o"
  "CMakeFiles/bench_obs1.dir/bench_obs1.cpp.o.d"
  "CMakeFiles/bench_obs1.dir/util.cpp.o"
  "CMakeFiles/bench_obs1.dir/util.cpp.o.d"
  "bench_obs1"
  "bench_obs1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_obs1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
