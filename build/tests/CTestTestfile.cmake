# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/flexnets_tests[1]_include.cmake")
add_test(cli_usage "/root/repo/build/tools/flexnets_cli")
set_tests_properties(cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;11;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_topo_stats "/root/repo/build/tools/flexnets_cli" "topo" "--topo=fattree" "--k=4" "--stats")
set_tests_properties(cli_topo_stats PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;13;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_topo_save_load "sh" "-c" "/root/repo/build/tools/flexnets_cli topo --topo=xpander --degree=3 --lift=4 --servers=2 --save=cli_test.topo && /root/repo/build/tools/flexnets_cli topo --load=cli_test.topo --stats && rm cli_test.topo")
set_tests_properties(cli_topo_save_load PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;15;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_fluid "/root/repo/build/tools/flexnets_cli" "fluid" "--topo=jellyfish" "--switches=16" "--degree=3" "--servers=2" "--fractions=0.5,1.0" "--eps=0.1")
set_tests_properties(cli_fluid PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_sim_packet "/root/repo/build/tools/flexnets_cli" "sim" "--topo=fattree" "--k=4" "--workload=a2a" "--routing=ecmp" "--rate=30" "--window-ms=5" "--warmup-ms=2")
set_tests_properties(cli_sim_packet PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;23;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_sim_flow "/root/repo/build/tools/flexnets_cli" "sim" "--topo=xpander" "--degree=3" "--lift=4" "--servers=2" "--engine=flow" "--routing=hyb" "--rate=50" "--window-ms=10" "--warmup-ms=5")
set_tests_properties(cli_sim_flow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;26;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_dyn "/root/repo/build/tools/flexnets_cli" "dyn" "--tors=8" "--servers=2" "--ports=2" "--scheduler=rotor" "--rate=10" "--window-ms=10" "--warmup-ms=5")
set_tests_properties(cli_dyn PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;30;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_bad_flags "/root/repo/build/tools/flexnets_cli" "topo" "--topo=slimfly" "--q=4")
set_tests_properties(cli_bad_flags PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;33;add_test;/root/repo/tests/CMakeLists.txt;0;")
