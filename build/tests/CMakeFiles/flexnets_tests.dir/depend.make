# Empty dependencies file for flexnets_tests.
# This may be replaced when dependencies are built.
