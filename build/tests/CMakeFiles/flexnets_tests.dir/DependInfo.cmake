
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/cli_args.cpp" "tests/CMakeFiles/flexnets_tests.dir/__/tools/cli_args.cpp.o" "gcc" "tests/CMakeFiles/flexnets_tests.dir/__/tools/cli_args.cpp.o.d"
  "/root/repo/tests/test_adversary.cpp" "tests/CMakeFiles/flexnets_tests.dir/test_adversary.cpp.o" "gcc" "tests/CMakeFiles/flexnets_tests.dir/test_adversary.cpp.o.d"
  "/root/repo/tests/test_bounds.cpp" "tests/CMakeFiles/flexnets_tests.dir/test_bounds.cpp.o" "gcc" "tests/CMakeFiles/flexnets_tests.dir/test_bounds.cpp.o.d"
  "/root/repo/tests/test_cli_args.cpp" "tests/CMakeFiles/flexnets_tests.dir/test_cli_args.cpp.o" "gcc" "tests/CMakeFiles/flexnets_tests.dir/test_cli_args.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/flexnets_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/flexnets_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_cost.cpp" "tests/CMakeFiles/flexnets_tests.dir/test_cost.cpp.o" "gcc" "tests/CMakeFiles/flexnets_tests.dir/test_cost.cpp.o.d"
  "/root/repo/tests/test_dynnet.cpp" "tests/CMakeFiles/flexnets_tests.dir/test_dynnet.cpp.o" "gcc" "tests/CMakeFiles/flexnets_tests.dir/test_dynnet.cpp.o.d"
  "/root/repo/tests/test_experiment.cpp" "tests/CMakeFiles/flexnets_tests.dir/test_experiment.cpp.o" "gcc" "tests/CMakeFiles/flexnets_tests.dir/test_experiment.cpp.o.d"
  "/root/repo/tests/test_failures.cpp" "tests/CMakeFiles/flexnets_tests.dir/test_failures.cpp.o" "gcc" "tests/CMakeFiles/flexnets_tests.dir/test_failures.cpp.o.d"
  "/root/repo/tests/test_flow.cpp" "tests/CMakeFiles/flexnets_tests.dir/test_flow.cpp.o" "gcc" "tests/CMakeFiles/flexnets_tests.dir/test_flow.cpp.o.d"
  "/root/repo/tests/test_flowsim.cpp" "tests/CMakeFiles/flexnets_tests.dir/test_flowsim.cpp.o" "gcc" "tests/CMakeFiles/flexnets_tests.dir/test_flowsim.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/flexnets_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/flexnets_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/flexnets_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/flexnets_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_ksp.cpp" "tests/CMakeFiles/flexnets_tests.dir/test_ksp.cpp.o" "gcc" "tests/CMakeFiles/flexnets_tests.dir/test_ksp.cpp.o.d"
  "/root/repo/tests/test_mcf.cpp" "tests/CMakeFiles/flexnets_tests.dir/test_mcf.cpp.o" "gcc" "tests/CMakeFiles/flexnets_tests.dir/test_mcf.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/flexnets_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/flexnets_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_mptcp.cpp" "tests/CMakeFiles/flexnets_tests.dir/test_mptcp.cpp.o" "gcc" "tests/CMakeFiles/flexnets_tests.dir/test_mptcp.cpp.o.d"
  "/root/repo/tests/test_network_stats.cpp" "tests/CMakeFiles/flexnets_tests.dir/test_network_stats.cpp.o" "gcc" "tests/CMakeFiles/flexnets_tests.dir/test_network_stats.cpp.o.d"
  "/root/repo/tests/test_paper_claims.cpp" "tests/CMakeFiles/flexnets_tests.dir/test_paper_claims.cpp.o" "gcc" "tests/CMakeFiles/flexnets_tests.dir/test_paper_claims.cpp.o.d"
  "/root/repo/tests/test_property_flowsim.cpp" "tests/CMakeFiles/flexnets_tests.dir/test_property_flowsim.cpp.o" "gcc" "tests/CMakeFiles/flexnets_tests.dir/test_property_flowsim.cpp.o.d"
  "/root/repo/tests/test_property_sim.cpp" "tests/CMakeFiles/flexnets_tests.dir/test_property_sim.cpp.o" "gcc" "tests/CMakeFiles/flexnets_tests.dir/test_property_sim.cpp.o.d"
  "/root/repo/tests/test_routing.cpp" "tests/CMakeFiles/flexnets_tests.dir/test_routing.cpp.o" "gcc" "tests/CMakeFiles/flexnets_tests.dir/test_routing.cpp.o.d"
  "/root/repo/tests/test_routing_modes.cpp" "tests/CMakeFiles/flexnets_tests.dir/test_routing_modes.cpp.o" "gcc" "tests/CMakeFiles/flexnets_tests.dir/test_routing_modes.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/flexnets_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/flexnets_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_smoke.cpp" "tests/CMakeFiles/flexnets_tests.dir/test_smoke.cpp.o" "gcc" "tests/CMakeFiles/flexnets_tests.dir/test_smoke.cpp.o.d"
  "/root/repo/tests/test_topo.cpp" "tests/CMakeFiles/flexnets_tests.dir/test_topo.cpp.o" "gcc" "tests/CMakeFiles/flexnets_tests.dir/test_topo.cpp.o.d"
  "/root/repo/tests/test_topo_io.cpp" "tests/CMakeFiles/flexnets_tests.dir/test_topo_io.cpp.o" "gcc" "tests/CMakeFiles/flexnets_tests.dir/test_topo_io.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/flexnets_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/flexnets_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_transport.cpp" "tests/CMakeFiles/flexnets_tests.dir/test_transport.cpp.o" "gcc" "tests/CMakeFiles/flexnets_tests.dir/test_transport.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/flexnets_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/flexnets_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/flexnets.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
