# Empty dependencies file for example_custom_routing.
# This may be replaced when dependencies are built.
