file(REMOVE_RECURSE
  "CMakeFiles/example_custom_routing.dir/custom_routing.cpp.o"
  "CMakeFiles/example_custom_routing.dir/custom_routing.cpp.o.d"
  "example_custom_routing"
  "example_custom_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
