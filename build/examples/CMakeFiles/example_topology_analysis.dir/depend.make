# Empty dependencies file for example_topology_analysis.
# This may be replaced when dependencies are built.
