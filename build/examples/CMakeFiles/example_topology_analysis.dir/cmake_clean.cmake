file(REMOVE_RECURSE
  "CMakeFiles/example_topology_analysis.dir/topology_analysis.cpp.o"
  "CMakeFiles/example_topology_analysis.dir/topology_analysis.cpp.o.d"
  "example_topology_analysis"
  "example_topology_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_topology_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
