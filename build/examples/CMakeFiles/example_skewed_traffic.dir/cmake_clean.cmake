file(REMOVE_RECURSE
  "CMakeFiles/example_skewed_traffic.dir/skewed_traffic.cpp.o"
  "CMakeFiles/example_skewed_traffic.dir/skewed_traffic.cpp.o.d"
  "example_skewed_traffic"
  "example_skewed_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_skewed_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
