# Empty dependencies file for example_skewed_traffic.
# This may be replaced when dependencies are built.
