# Empty dependencies file for example_dynamic_vs_static.
# This may be replaced when dependencies are built.
