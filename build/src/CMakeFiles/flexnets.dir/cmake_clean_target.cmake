file(REMOVE_RECURSE
  "libflexnets.a"
)
