
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/flexnets.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/flexnets.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/common/stats.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/flexnets.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/common/table.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/flexnets.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/fluid_runner.cpp" "src/CMakeFiles/flexnets.dir/core/fluid_runner.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/core/fluid_runner.cpp.o.d"
  "/root/repo/src/core/packet_runner.cpp" "src/CMakeFiles/flexnets.dir/core/packet_runner.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/core/packet_runner.cpp.o.d"
  "/root/repo/src/cost/cost_model.cpp" "src/CMakeFiles/flexnets.dir/cost/cost_model.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/cost/cost_model.cpp.o.d"
  "/root/repo/src/dynnet/dynamic_network.cpp" "src/CMakeFiles/flexnets.dir/dynnet/dynamic_network.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/dynnet/dynamic_network.cpp.o.d"
  "/root/repo/src/flow/adversary.cpp" "src/CMakeFiles/flexnets.dir/flow/adversary.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/flow/adversary.cpp.o.d"
  "/root/repo/src/flow/bounds.cpp" "src/CMakeFiles/flexnets.dir/flow/bounds.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/flow/bounds.cpp.o.d"
  "/root/repo/src/flow/dynamic_models.cpp" "src/CMakeFiles/flexnets.dir/flow/dynamic_models.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/flow/dynamic_models.cpp.o.d"
  "/root/repo/src/flow/fat_tree_model.cpp" "src/CMakeFiles/flexnets.dir/flow/fat_tree_model.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/flow/fat_tree_model.cpp.o.d"
  "/root/repo/src/flow/mcf.cpp" "src/CMakeFiles/flexnets.dir/flow/mcf.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/flow/mcf.cpp.o.d"
  "/root/repo/src/flow/throughput.cpp" "src/CMakeFiles/flexnets.dir/flow/throughput.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/flow/throughput.cpp.o.d"
  "/root/repo/src/flow/tm_generators.cpp" "src/CMakeFiles/flexnets.dir/flow/tm_generators.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/flow/tm_generators.cpp.o.d"
  "/root/repo/src/flow/traffic_matrix.cpp" "src/CMakeFiles/flexnets.dir/flow/traffic_matrix.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/flow/traffic_matrix.cpp.o.d"
  "/root/repo/src/flowsim/flow_sim.cpp" "src/CMakeFiles/flexnets.dir/flowsim/flow_sim.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/flowsim/flow_sim.cpp.o.d"
  "/root/repo/src/graph/algorithms.cpp" "src/CMakeFiles/flexnets.dir/graph/algorithms.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/graph/algorithms.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/flexnets.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/ksp.cpp" "src/CMakeFiles/flexnets.dir/graph/ksp.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/graph/ksp.cpp.o.d"
  "/root/repo/src/graph/matching.cpp" "src/CMakeFiles/flexnets.dir/graph/matching.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/graph/matching.cpp.o.d"
  "/root/repo/src/graph/spectral.cpp" "src/CMakeFiles/flexnets.dir/graph/spectral.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/graph/spectral.cpp.o.d"
  "/root/repo/src/metrics/fct_tracker.cpp" "src/CMakeFiles/flexnets.dir/metrics/fct_tracker.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/metrics/fct_tracker.cpp.o.d"
  "/root/repo/src/routing/ksp_table.cpp" "src/CMakeFiles/flexnets.dir/routing/ksp_table.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/routing/ksp_table.cpp.o.d"
  "/root/repo/src/routing/routing_table.cpp" "src/CMakeFiles/flexnets.dir/routing/routing_table.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/routing/routing_table.cpp.o.d"
  "/root/repo/src/routing/strategy.cpp" "src/CMakeFiles/flexnets.dir/routing/strategy.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/routing/strategy.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/flexnets.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/link.cpp" "src/CMakeFiles/flexnets.dir/sim/link.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/sim/link.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/CMakeFiles/flexnets.dir/sim/network.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/sim/network.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/flexnets.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/topo/dragonfly.cpp" "src/CMakeFiles/flexnets.dir/topo/dragonfly.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/topo/dragonfly.cpp.o.d"
  "/root/repo/src/topo/failures.cpp" "src/CMakeFiles/flexnets.dir/topo/failures.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/topo/failures.cpp.o.d"
  "/root/repo/src/topo/fat_tree.cpp" "src/CMakeFiles/flexnets.dir/topo/fat_tree.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/topo/fat_tree.cpp.o.d"
  "/root/repo/src/topo/io.cpp" "src/CMakeFiles/flexnets.dir/topo/io.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/topo/io.cpp.o.d"
  "/root/repo/src/topo/jellyfish.cpp" "src/CMakeFiles/flexnets.dir/topo/jellyfish.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/topo/jellyfish.cpp.o.d"
  "/root/repo/src/topo/long_hop.cpp" "src/CMakeFiles/flexnets.dir/topo/long_hop.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/topo/long_hop.cpp.o.d"
  "/root/repo/src/topo/slim_fly.cpp" "src/CMakeFiles/flexnets.dir/topo/slim_fly.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/topo/slim_fly.cpp.o.d"
  "/root/repo/src/topo/topology.cpp" "src/CMakeFiles/flexnets.dir/topo/topology.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/topo/topology.cpp.o.d"
  "/root/repo/src/topo/toy.cpp" "src/CMakeFiles/flexnets.dir/topo/toy.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/topo/toy.cpp.o.d"
  "/root/repo/src/topo/xpander.cpp" "src/CMakeFiles/flexnets.dir/topo/xpander.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/topo/xpander.cpp.o.d"
  "/root/repo/src/transport/dctcp.cpp" "src/CMakeFiles/flexnets.dir/transport/dctcp.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/transport/dctcp.cpp.o.d"
  "/root/repo/src/transport/mptcp.cpp" "src/CMakeFiles/flexnets.dir/transport/mptcp.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/transport/mptcp.cpp.o.d"
  "/root/repo/src/workload/arrivals.cpp" "src/CMakeFiles/flexnets.dir/workload/arrivals.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/workload/arrivals.cpp.o.d"
  "/root/repo/src/workload/flow_size.cpp" "src/CMakeFiles/flexnets.dir/workload/flow_size.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/workload/flow_size.cpp.o.d"
  "/root/repo/src/workload/pairs.cpp" "src/CMakeFiles/flexnets.dir/workload/pairs.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/workload/pairs.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/CMakeFiles/flexnets.dir/workload/trace.cpp.o" "gcc" "src/CMakeFiles/flexnets.dir/workload/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
