# Empty dependencies file for flexnets.
# This may be replaced when dependencies are built.
