
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/cli_args.cpp" "tools/CMakeFiles/flexnets_cli.dir/cli_args.cpp.o" "gcc" "tools/CMakeFiles/flexnets_cli.dir/cli_args.cpp.o.d"
  "/root/repo/tools/cli_dyn.cpp" "tools/CMakeFiles/flexnets_cli.dir/cli_dyn.cpp.o" "gcc" "tools/CMakeFiles/flexnets_cli.dir/cli_dyn.cpp.o.d"
  "/root/repo/tools/cli_fluid.cpp" "tools/CMakeFiles/flexnets_cli.dir/cli_fluid.cpp.o" "gcc" "tools/CMakeFiles/flexnets_cli.dir/cli_fluid.cpp.o.d"
  "/root/repo/tools/cli_main.cpp" "tools/CMakeFiles/flexnets_cli.dir/cli_main.cpp.o" "gcc" "tools/CMakeFiles/flexnets_cli.dir/cli_main.cpp.o.d"
  "/root/repo/tools/cli_sim.cpp" "tools/CMakeFiles/flexnets_cli.dir/cli_sim.cpp.o" "gcc" "tools/CMakeFiles/flexnets_cli.dir/cli_sim.cpp.o.d"
  "/root/repo/tools/cli_topo.cpp" "tools/CMakeFiles/flexnets_cli.dir/cli_topo.cpp.o" "gcc" "tools/CMakeFiles/flexnets_cli.dir/cli_topo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/flexnets.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
