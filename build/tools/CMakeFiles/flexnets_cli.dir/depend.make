# Empty dependencies file for flexnets_cli.
# This may be replaced when dependencies are built.
