file(REMOVE_RECURSE
  "CMakeFiles/flexnets_cli.dir/cli_args.cpp.o"
  "CMakeFiles/flexnets_cli.dir/cli_args.cpp.o.d"
  "CMakeFiles/flexnets_cli.dir/cli_dyn.cpp.o"
  "CMakeFiles/flexnets_cli.dir/cli_dyn.cpp.o.d"
  "CMakeFiles/flexnets_cli.dir/cli_fluid.cpp.o"
  "CMakeFiles/flexnets_cli.dir/cli_fluid.cpp.o.d"
  "CMakeFiles/flexnets_cli.dir/cli_main.cpp.o"
  "CMakeFiles/flexnets_cli.dir/cli_main.cpp.o.d"
  "CMakeFiles/flexnets_cli.dir/cli_sim.cpp.o"
  "CMakeFiles/flexnets_cli.dir/cli_sim.cpp.o.d"
  "CMakeFiles/flexnets_cli.dir/cli_topo.cpp.o"
  "CMakeFiles/flexnets_cli.dir/cli_topo.cpp.o.d"
  "flexnets_cli"
  "flexnets_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexnets_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
